"""Identifying software-prefetch targets from ablation profiles (§4.1).

The input is a pair of per-function profiles — the experiment group
(prefetchers disabled) and the control group (enabled) — as produced by
the fleetwide profiler over an ablation study. A function is a target when
disabling hardware prefetchers made it meaningfully *worse*: its CPU
cycles and its LLC MPKI both rose, and it is hot enough to matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.errors import ConfigError
from repro.memsys.stats import FunctionStats
from repro.workloads.base import (
    FunctionCategory,
    TAX_CATEGORIES,
    category_of_function,
)


@dataclass(frozen=True)
class TargetSelection:
    """One function's ablation outcome and targeting decision."""

    function: str
    category: FunctionCategory
    #: Fractional cycle change when prefetchers are disabled (+0.5 = +50%).
    cycle_delta: float
    #: Fractional MPKI change when prefetchers are disabled.
    mpki_delta: float
    #: Share of total profiled cycles (control group).
    cycle_share: float
    selected: bool
    reason: str

    @property
    def is_tax(self) -> bool:
        """True when the category is a data center tax category."""
        return self.category in TAX_CATEGORIES


def _fractional_change(new: float, old: float) -> float:
    if old <= 0.0:
        return 0.0 if new <= 0.0 else float("inf")
    return (new - old) / old


def identify_targets(control: Mapping[str, FunctionStats],
                     experiment: Mapping[str, FunctionStats],
                     min_cycle_share: float = 0.01,
                     min_cycle_regression: float = 0.05,
                     min_mpki_regression: float = 0.10) -> List[TargetSelection]:
    """Rank functions by ablation regression; select prefetch targets.

    Args:
        control: Per-function stats with hardware prefetchers enabled.
        experiment: Per-function stats with them disabled.
        min_cycle_share: Functions colder than this are never selected —
            "not hot enough to warrant standalone optimizations" (§4.1).
        min_cycle_regression: Minimum fractional cycle increase.
        min_mpki_regression: Minimum fractional MPKI increase.

    Returns selections sorted by descending cycle regression.
    """
    if not control:
        raise ConfigError("control profile is empty")
    total_cycles = sum(stats.cycles for stats in control.values())
    if total_cycles <= 0:
        raise ConfigError("control profile has no cycles")

    selections: List[TargetSelection] = []
    for function, base in control.items():
        ablated = experiment.get(function)
        if ablated is None:
            continue
        cycle_delta = _fractional_change(ablated.cycles, base.cycles)
        mpki_delta = _fractional_change(ablated.llc_mpki, base.llc_mpki)
        share = base.cycles / total_cycles
        if share < min_cycle_share:
            selected, reason = False, "too cold"
        elif cycle_delta < min_cycle_regression:
            selected, reason = False, "no cycle regression"
        elif mpki_delta < min_mpki_regression:
            selected, reason = False, "regression not miss-driven"
        else:
            selected, reason = True, "regresses under ablation"
        selections.append(TargetSelection(
            function=function,
            category=category_of_function(function),
            cycle_delta=cycle_delta,
            mpki_delta=mpki_delta,
            cycle_share=share,
            selected=selected,
            reason=reason,
        ))
    selections.sort(key=lambda s: s.cycle_delta, reverse=True)
    return selections


def selected_functions(selections: List[TargetSelection]) -> List[str]:
    """Names of the selected targets, preserving rank order."""
    return [s.function for s in selections if s.selected]


def category_rollup(selections: List[TargetSelection]) -> Dict[FunctionCategory, float]:
    """Cycle-share-weighted cycle delta per category — the Figure 12 view."""
    totals: Dict[FunctionCategory, float] = {}
    weights: Dict[FunctionCategory, float] = {}
    for selection in selections:
        if selection.cycle_delta == float("inf"):
            continue
        totals[selection.category] = (
            totals.get(selection.category, 0.0)
            + selection.cycle_delta * selection.cycle_share)
        weights[selection.category] = (
            weights.get(selection.category, 0.0) + selection.cycle_share)
    return {category: totals[category] / weights[category]
            for category in totals if weights[category] > 0}
