"""Actuating prefetcher controls.

"The controller in Limoncello enables and disables hardware prefetchers by
writing to the model-specific registers (MSRs) for prefetchers. The
register addresses and values vary for different vendors/platforms. For a
given platform, we disable all prefetchers in the platform." (Section 3.)

:class:`MSRPrefetcherActuator` implements exactly that against the
simulated MSR layer, including readback verification and bounded retries
for transient ``wrmsr`` failures.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import MSRAccessError
from repro.msr.platform_defs import PlatformMSRMap
from repro.msr.registers import MSRFile


class PrefetcherActuator(Protocol):
    """What the daemon needs: set the prefetcher state, report it back."""

    def set_enabled(self, enabled: bool) -> bool:
        """Try to apply ``enabled``; returns True when verified applied."""

    def is_enabled(self) -> bool:
        """Current state as read back from the hardware."""


class MSRPrefetcherActuator:
    """Flips every prefetcher disable bit in the platform's MSR map."""

    def __init__(self, msr_file: MSRFile, msr_map: PlatformMSRMap,
                 retries: int = 3) -> None:
        if retries < 1:
            raise ValueError(f"retries must be at least 1, got {retries}")
        self._msrs = msr_file
        self._map = msr_map
        self._retries = retries
        msr_map.declare_registers(msr_file)
        self.actuations = 0
        self.failed_actuations = 0

    def set_enabled(self, enabled: bool) -> bool:
        """Write the disable bits, verifying by readback; retries transient
        failures up to the configured bound. Returns success."""
        for _ in range(self._retries):
            try:
                if enabled:
                    self._map.enable_all(self._msrs)
                else:
                    self._map.disable_all(self._msrs)
            except MSRAccessError:
                continue
            if self.is_enabled() == enabled:
                self.actuations += 1
                return True
        self.failed_actuations += 1
        return False

    def is_enabled(self) -> bool:
        """True iff every prefetcher reads back enabled.

        A socket with a partial (mixed) state reports disabled, which
        makes the daemon re-actuate toward a consistent state.
        """
        return self._map.all_enabled(self._msrs)


class CallbackActuator:
    """An actuator that calls a function — used by tests and by fleet
    machines whose sockets expose a direct toggle."""

    def __init__(self, apply: Callable[[bool], None],
                 initial_enabled: bool = True) -> None:
        self._apply = apply
        self._enabled = initial_enabled
        self.actuations = 0

    def set_enabled(self, enabled: bool) -> bool:
        """Apply the prefetcher state; returns True when verified."""
        self._apply(enabled)
        self._enabled = enabled
        self.actuations += 1
        return True

    def is_enabled(self) -> bool:
        """Current prefetcher state as known to this actuator."""
        return self._enabled
