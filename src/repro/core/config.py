"""Configuration for the Limoncello controller and daemon."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import SECOND


@dataclass(frozen=True)
class LimoncelloConfig:
    """Hard Limoncello's operating parameters.

    The deployed configuration (Section 5) uses thresholds at 60% and 80%
    of the platform's memory-bandwidth saturation, chosen by the fleet
    threshold study (Figure 10), with telemetry sampled every second.

    Attributes:
        lower_threshold: Utilization (fraction of saturation bandwidth)
            below which prefetchers are re-enabled.
        upper_threshold: Utilization above which prefetchers are disabled.
        sustain_duration_ns: How long bandwidth must stay beyond a
            threshold before the controller changes prefetcher state —
            the second hysteresis mechanism of Section 3.
        sample_period_ns: Telemetry sampling period (1 s in the paper).
        actuation_retries: wrmsr attempts before giving up on a transient
            MSR failure; the daemon retries on the next sample anyway.
    """

    lower_threshold: float = 0.60
    upper_threshold: float = 0.80
    sustain_duration_ns: float = 5.0 * SECOND
    sample_period_ns: float = 1.0 * SECOND
    actuation_retries: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.lower_threshold < self.upper_threshold:
            raise ConfigError(
                f"need 0 < lower ({self.lower_threshold}) < upper "
                f"({self.upper_threshold})")
        if self.upper_threshold > 1.0:
            raise ConfigError(
                f"upper threshold {self.upper_threshold} exceeds saturation")
        if self.sustain_duration_ns < 0:
            raise ConfigError("sustain duration cannot be negative")
        if self.sample_period_ns <= 0:
            raise ConfigError("sample period must be positive")
        if self.actuation_retries < 1:
            raise ConfigError("need at least one actuation attempt")

    @classmethod
    def from_percent(cls, lower: float, upper: float,
                     **kwargs) -> "LimoncelloConfig":
        """Build a config from thresholds given in percent (e.g. 60, 80),
        the way the paper writes configurations like "60/80"."""
        return cls(lower_threshold=lower / 100.0,
                   upper_threshold=upper / 100.0, **kwargs)

    @property
    def label(self) -> str:
        """The paper's X/Y configuration label, e.g. ``"60/80"``."""
        return (f"{round(self.lower_threshold * 100)}/"
                f"{round(self.upper_threshold * 100)}")
