"""Configuration for the Limoncello controller and daemon."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.units import SECOND


@dataclass(frozen=True)
class RetryPolicy:
    """How the daemon retries failed actuations.

    The defaults reproduce the original ad-hoc behaviour — retry on
    every subsequent tick, forever — so existing configurations are
    unchanged. Hardened deployments (and chaos studies) bound the
    attempts and space them out exponentially, which is what keeps a
    daemon from hammering a dead msr driver every second fleetwide.

    Attributes:
        max_attempts: Consecutive failed attempts toward one target
            state before the daemon gives up until the controller's
            decision changes. ``None`` means unbounded.
        initial_backoff_ns: Wait after the first failure before the
            next attempt. ``0`` retries on the next tick.
        backoff_multiplier: Growth factor per subsequent failure.
        max_backoff_ns: Upper bound on the computed backoff.
    """

    max_attempts: Optional[int] = None
    initial_backoff_ns: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_ns: float = 60.0 * SECOND

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be at least 1 (or None for "
                f"unbounded), got {self.max_attempts}")
        if self.initial_backoff_ns < 0:
            raise ConfigError("initial backoff cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff multiplier must be >= 1, got "
                f"{self.backoff_multiplier}")
        if self.max_backoff_ns < self.initial_backoff_ns:
            raise ConfigError("max backoff cannot undercut the initial "
                              "backoff")

    def backoff_ns(self, failures: int) -> float:
        """Wait before the next attempt after ``failures`` consecutive
        failures (``failures >= 1``)."""
        if failures < 1:
            raise ConfigError(
                f"backoff is defined after at least one failure, got "
                f"{failures}")
        backoff = (self.initial_backoff_ns
                   * self.backoff_multiplier ** (failures - 1))
        return min(backoff, self.max_backoff_ns)

    @classmethod
    def exponential(cls, max_attempts: int = 6,
                    initial_backoff_ns: float = 1.0 * SECOND,
                    backoff_multiplier: float = 2.0,
                    max_backoff_ns: float = 60.0 * SECOND) -> "RetryPolicy":
        """The hardened default: bounded attempts, exponential spacing."""
        return cls(max_attempts=max_attempts,
                   initial_backoff_ns=initial_backoff_ns,
                   backoff_multiplier=backoff_multiplier,
                   max_backoff_ns=max_backoff_ns)


@dataclass(frozen=True)
class LimoncelloConfig:
    """Hard Limoncello's operating parameters.

    The deployed configuration (Section 5) uses thresholds at 60% and 80%
    of the platform's memory-bandwidth saturation, chosen by the fleet
    threshold study (Figure 10), with telemetry sampled every second.

    Attributes:
        lower_threshold: Utilization (fraction of saturation bandwidth)
            below which prefetchers are re-enabled.
        upper_threshold: Utilization above which prefetchers are disabled.
        sustain_duration_ns: How long bandwidth must stay beyond a
            threshold before the controller changes prefetcher state —
            the second hysteresis mechanism of Section 3.
        sample_period_ns: Telemetry sampling period (1 s in the paper).
        actuation_retries: wrmsr attempts before giving up on a transient
            MSR failure; the daemon retries on the next sample anyway.
        retry_policy: How the daemon spaces and bounds those next-sample
            retries (default: legacy behaviour — every tick, unbounded).
        telemetry_failsafe_deadline_ns: When telemetry stays dark (no
            usable sample) at least this long, the daemon fails safe by
            re-enabling prefetchers — the hardware-default state — and
            logs an incident. ``None`` (default) disables the rule.
    """

    lower_threshold: float = 0.60
    upper_threshold: float = 0.80
    sustain_duration_ns: float = 5.0 * SECOND
    sample_period_ns: float = 1.0 * SECOND
    actuation_retries: int = 3
    retry_policy: RetryPolicy = RetryPolicy()
    telemetry_failsafe_deadline_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.lower_threshold < self.upper_threshold:
            raise ConfigError(
                f"need 0 < lower ({self.lower_threshold}) < upper "
                f"({self.upper_threshold})")
        if self.upper_threshold > 1.0:
            raise ConfigError(
                f"upper threshold {self.upper_threshold} exceeds saturation")
        if self.sustain_duration_ns < 0:
            raise ConfigError("sustain duration cannot be negative")
        if self.sample_period_ns <= 0:
            raise ConfigError("sample period must be positive")
        if self.actuation_retries < 1:
            raise ConfigError("need at least one actuation attempt")
        if (self.telemetry_failsafe_deadline_ns is not None
                and self.telemetry_failsafe_deadline_ns <= 0):
            raise ConfigError("fail-safe deadline must be positive "
                              "(or None to disable)")

    @classmethod
    def from_percent(cls, lower: float, upper: float,
                     **kwargs) -> "LimoncelloConfig":
        """Build a config from thresholds given in percent (e.g. 60, 80),
        the way the paper writes configurations like "60/80"."""
        return cls(lower_threshold=lower / 100.0,
                   upper_threshold=upper / 100.0, **kwargs)

    @property
    def label(self) -> str:
        """The paper's X/Y configuration label, e.g. ``"60/80"``."""
        return (f"{round(self.lower_threshold * 100)}/"
                f"{round(self.upper_threshold * 100)}")
