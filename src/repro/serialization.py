"""Serialization: traces and experiment results to portable JSON.

Traces round-trip losslessly through JSON Lines (one record per line), so
workloads captured once can be replayed across simulator versions and
shared alongside results. Experiment results flatten to plain dicts for
archiving next to the benchmark outputs.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Dict, Iterable, List, Union

from repro.access.record import AccessKind, MemoryAccess
from repro.access.trace import Trace
from repro.errors import TraceError
from repro.memsys.stats import FunctionStats, RunResult

_PathLike = Union[str, pathlib.Path]


def canonical_json(obj) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace.

    The one encoding shared by everything that content-hashes or
    byte-compares JSON — result-cache keys and payload digests, the
    observability event log, manifest run digests. Two equal values
    always encode to identical bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def atomic_write_text(path: _PathLike, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The one write discipline shared by everything that persists results
    — the result cache, the shard checkpoint journal, observability
    output, archived metrics. A reader can never observe a torn file: it
    sees either the previous complete content or the new complete
    content, even if the writer is SIGKILLed mid-write, because the data
    lands under a temporary name in the same directory first and the
    final ``os.replace`` is atomic on POSIX.
    """
    path = pathlib.Path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


# --- traces -----------------------------------------------------------------

def access_to_dict(record: MemoryAccess) -> Dict:
    """One trace record as a plain dict (JSON-safe)."""
    return {
        "address": record.address,
        "size": record.size,
        "kind": record.kind.value,
        "pc": record.pc,
        "function": record.function,
        "gap_cycles": record.gap_cycles,
    }


def access_from_dict(data: Dict) -> MemoryAccess:
    """Inverse of :func:`access_to_dict`."""
    try:
        kind = AccessKind(data.get("kind", AccessKind.LOAD.value))
        return MemoryAccess(
            address=data["address"],
            size=data.get("size", 8),
            kind=kind,
            pc=data.get("pc", 0),
            function=data.get("function", ""),
            gap_cycles=data.get("gap_cycles", 0),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise TraceError(f"malformed trace record {data!r}: {error}") from error


def trace_to_dicts(trace: Trace) -> List[Dict]:
    """A whole trace as a list of plain dicts."""
    return [access_to_dict(record) for record in trace]


def trace_from_dicts(records: Iterable[Dict]) -> Trace:
    """Inverse of :func:`trace_to_dicts`."""
    return Trace(access_from_dict(record) for record in records)


def save_trace_jsonl(trace: Trace, path: _PathLike) -> None:
    """Write a trace as JSON Lines (one record per line; atomic)."""
    lines = [json.dumps(access_to_dict(record)) for record in trace]
    atomic_write_text(path, "".join(line + "\n" for line in lines))


def load_trace_jsonl(path: _PathLike) -> Trace:
    """Read a trace written by :func:`save_trace_jsonl`."""
    path = pathlib.Path(path)
    records = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{line_number}: invalid JSON: {error}") from error
            records.append(access_from_dict(data))
    return Trace(records)


# --- results -----------------------------------------------------------------

def function_stats_to_dict(stats: FunctionStats) -> Dict:
    """One function's statistics as a plain dict, including the derived
    metrics the paper reports (MPKI, load-to-use)."""
    return {
        "instructions": stats.instructions,
        "compute_cycles": stats.compute_cycles,
        "stall_cycles": stats.stall_cycles,
        "cycles": stats.cycles,
        "loads": stats.loads,
        "stores": stats.stores,
        "software_prefetches": stats.software_prefetches,
        "l1_misses": stats.l1_misses,
        "l2_misses": stats.l2_misses,
        "llc_misses": stats.llc_misses,
        "llc_mpki": stats.llc_mpki,
        "prefetch_covered": stats.prefetch_covered,
        "late_prefetch_hits": stats.late_prefetch_hits,
        "dram_wait_ns": stats.dram_wait_ns,
        "late_prefetch_wait_ns": stats.late_prefetch_wait_ns,
        "average_load_to_use_ns": stats.average_load_to_use_ns,
    }


def function_stats_from_dict(data: Dict) -> FunctionStats:
    """Inverse of :func:`function_stats_to_dict` (derived metrics such as
    ``cycles`` and ``llc_mpki`` are recomputed, not read back)."""
    return FunctionStats(
        instructions=int(data.get("instructions", 0)),
        compute_cycles=int(data.get("compute_cycles", 0)),
        stall_cycles=float(data.get("stall_cycles", 0.0)),
        loads=int(data.get("loads", 0)),
        stores=int(data.get("stores", 0)),
        software_prefetches=int(data.get("software_prefetches", 0)),
        l1_misses=int(data.get("l1_misses", 0)),
        l2_misses=int(data.get("l2_misses", 0)),
        llc_misses=int(data.get("llc_misses", 0)),
        prefetch_covered=int(data.get("prefetch_covered", 0)),
        late_prefetch_hits=int(data.get("late_prefetch_hits", 0)),
        dram_wait_ns=float(data.get("dram_wait_ns", 0.0)),
        late_prefetch_wait_ns=float(data.get("late_prefetch_wait_ns", 0.0)),
    )


def run_result_to_dict(result: RunResult) -> Dict:
    """A simulator run's outcome as a plain dict."""
    return {
        "elapsed_ns": result.elapsed_ns,
        "dram_demand_fills": result.dram_demand_fills,
        "dram_prefetch_fills": result.dram_prefetch_fills,
        "dram_total_bytes": result.dram_total_bytes,
        "average_bandwidth": result.average_bandwidth,
        "prefetch_traffic_fraction": result.prefetch_traffic_fraction,
        "prefetch_accuracy": result.prefetch_accuracy,
        "hw_prefetches_issued": result.hw_prefetches_issued,
        "useful_prefetches": result.useful_prefetches,
        "wasted_prefetches": result.wasted_prefetches,
        "total": function_stats_to_dict(result.total),
        "functions": {name: function_stats_to_dict(stats)
                      for name, stats in sorted(result.functions.items())},
    }


def save_run_result(result: RunResult, path: _PathLike) -> None:
    """Archive a run result as pretty-printed JSON (atomic)."""
    atomic_write_text(path, json.dumps(run_result_to_dict(result), indent=2)
                      + "\n")


def fleet_metrics_to_dict(metrics, include_samples: bool = False) -> Dict:
    """A fleet run's metrics as a plain dict.

    By default only the summaries the evaluation quotes are included;
    ``include_samples`` additionally embeds every raw per-socket sample
    (large, but enough to recompute any percentile later).
    """
    bandwidth = metrics.bandwidth_summary()
    latency = metrics.latency_summary()
    data = {
        "epochs": metrics.epochs,
        "rejections": metrics.rejections,
        "total_qps": metrics.total_qps,
        "ideal_qps": metrics.ideal_qps,
        "normalized_throughput": metrics.normalized_throughput,
        "cpu_utilization_mean": metrics.cpu_utilization_mean(),
        "saturated_socket_fraction": metrics.saturated_socket_fraction(),
        "bandwidth": {"mean": bandwidth.mean, "p50": bandwidth.p50,
                      "p90": bandwidth.p90, "p99": bandwidth.p99,
                      "peak": bandwidth.peak},
        "latency_ns": {"mean": latency.mean, "p50": latency.p50,
                       "p90": latency.p90, "p99": latency.p99,
                       "peak": latency.peak},
        "throughput_by_cpu_band": metrics.throughput_by_cpu_band(),
        "bandwidth_by_cpu_bucket": metrics.bandwidth_by_cpu_bucket(),
    }
    if include_samples:
        data["samples"] = {
            "socket_bandwidth": list(metrics.socket_bandwidth),
            "socket_utilization": list(metrics.socket_utilization),
            "socket_latency": list(metrics.socket_latency),
            "machine_points": [list(point)
                               for point in metrics.machine_points],
        }
    return data


def save_fleet_metrics(metrics, path: _PathLike,
                       include_samples: bool = False) -> None:
    """Archive fleet metrics as pretty-printed JSON (atomic)."""
    atomic_write_text(path, json.dumps(
        fleet_metrics_to_dict(metrics, include_samples), indent=2) + "\n")


def fleet_metrics_from_dict(data: Dict):
    """Inverse of ``fleet_metrics_to_dict(..., include_samples=True)``.

    Raw samples are required — summaries alone cannot rebuild the metric
    object — so dicts written without ``include_samples`` are rejected.
    JSON round-trips floats exactly, so a reloaded object reproduces
    every percentile bit-for-bit.
    """
    from repro.fleet.cluster import FleetMetrics

    try:
        samples = data["samples"]
        return FleetMetrics(
            socket_bandwidth=[float(x)
                              for x in samples["socket_bandwidth"]],
            socket_utilization=[float(x)
                                for x in samples["socket_utilization"]],
            socket_latency=[float(x) for x in samples["socket_latency"]],
            machine_points=[tuple(float(v) for v in point)
                            for point in samples["machine_points"]],
            total_qps=float(data["total_qps"]),
            ideal_qps=float(data["ideal_qps"]),
            rejections=int(data["rejections"]),
            epochs=int(data["epochs"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise TraceError(
            f"malformed fleet metrics record: {error}") from error


def profile_data_to_dict(profile) -> Dict:
    """A fleetwide profile aggregate as a plain dict."""
    return {
        "samples": profile.samples,
        "functions": {name: function_stats_to_dict(stats)
                      for name, stats in profile},
    }


def profile_data_from_dict(data: Dict):
    """Inverse of :func:`profile_data_to_dict`."""
    from repro.profiling.profile_data import ProfileData

    try:
        functions = {name: function_stats_from_dict(stats)
                     for name, stats in data["functions"].items()}
        return ProfileData.from_mapping(functions,
                                        samples=int(data["samples"]))
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise TraceError(f"malformed profile record: {error}") from error


def chaos_metrics_to_dict(chaos) -> Dict:
    """A chaos-study aggregate as a plain dict (lossless: every field is
    a raw accumulator, so views like availability/MTTR recompute)."""
    return {
        "ticks": chaos.ticks,
        "available_ticks": chaos.available_ticks,
        "down_ticks": chaos.down_ticks,
        "dropouts": chaos.dropouts,
        "invalid_samples": chaos.invalid_samples,
        "actuation_attempts": chaos.actuation_attempts,
        "actuation_failures": chaos.actuation_failures,
        "transitions": chaos.transitions,
        "incidents": chaos.incidents,
        "recovered_incidents": chaos.recovered_incidents,
        "recovery_time_ns": chaos.recovery_time_ns,
        "detection_latency_ns": chaos.detection_latency_ns,
        "failsafe_engagements": chaos.failsafe_engagements,
        "disabled_ticks": chaos.disabled_ticks,
        "state_ticks": chaos.state_ticks,
        "machine_crashes": chaos.machine_crashes,
        "machine_restarts": chaos.machine_restarts,
        "incident_kinds": dict(sorted(chaos.incident_kinds.items())),
    }


def chaos_metrics_from_dict(data: Dict):
    """Inverse of :func:`chaos_metrics_to_dict`."""
    from repro.faults.metrics import ChaosMetrics

    try:
        return ChaosMetrics(
            ticks=int(data["ticks"]),
            available_ticks=int(data["available_ticks"]),
            down_ticks=int(data["down_ticks"]),
            dropouts=int(data["dropouts"]),
            invalid_samples=int(data["invalid_samples"]),
            actuation_attempts=int(data["actuation_attempts"]),
            actuation_failures=int(data["actuation_failures"]),
            transitions=int(data["transitions"]),
            incidents=int(data["incidents"]),
            recovered_incidents=int(data["recovered_incidents"]),
            recovery_time_ns=float(data["recovery_time_ns"]),
            detection_latency_ns=float(data["detection_latency_ns"]),
            failsafe_engagements=int(data["failsafe_engagements"]),
            disabled_ticks=int(data["disabled_ticks"]),
            state_ticks=int(data["state_ticks"]),
            machine_crashes=int(data["machine_crashes"]),
            machine_restarts=int(data["machine_restarts"]),
            incident_kinds={str(kind): int(count) for kind, count
                            in data.get("incident_kinds", {}).items()},
        )
    except (KeyError, TypeError, ValueError) as error:
        raise TraceError(
            f"malformed chaos metrics record: {error}") from error


def policy_metrics_to_dict(metrics) -> Dict:
    """A policy-study aggregate as a plain dict (lossless: every field
    is a raw accumulator, so views like duty-cycle error recompute)."""
    return {
        "samples": metrics.samples,
        "disabled_samples": metrics.disabled_samples,
        "band_mismatches": metrics.band_mismatches,
        "band_samples": metrics.band_samples,
        "transitions": metrics.transitions,
        "learn_updates": metrics.learn_updates,
        "explorations": metrics.explorations,
        "prefetcher_disabled": dict(
            sorted(metrics.prefetcher_disabled.items())),
    }


def policy_metrics_from_dict(data: Dict):
    """Inverse of :func:`policy_metrics_to_dict`."""
    from repro.policy.metrics import PolicyMetrics

    try:
        return PolicyMetrics(
            samples=int(data["samples"]),
            disabled_samples=int(data["disabled_samples"]),
            band_mismatches=int(data["band_mismatches"]),
            band_samples=int(data["band_samples"]),
            transitions=int(data["transitions"]),
            learn_updates=int(data["learn_updates"]),
            explorations=int(data["explorations"]),
            prefetcher_disabled={str(name): int(count) for name, count
                                 in data.get("prefetcher_disabled",
                                             {}).items()},
        )
    except (KeyError, TypeError, ValueError) as error:
        raise TraceError(
            f"malformed policy metrics record: {error}") from error


def policy_to_dict(policy) -> Dict:
    """A control policy's canonical serialized form."""
    return policy.to_dict()


def policy_from_dict(data: Dict):
    """Inverse of :func:`policy_to_dict` (dispatches on ``kind``)."""
    from repro.policy import policy_from_dict as rebuild

    return rebuild(data)


def ablation_result_to_dict(result) -> Dict:
    """A paired ablation result as a plain dict (lossless: includes the
    raw samples needed to rebuild every view)."""
    data = {
        "mode": result.mode,
        "control": fleet_metrics_to_dict(result.control,
                                         include_samples=True),
        "experiment": fleet_metrics_to_dict(result.experiment,
                                            include_samples=True),
        "control_profile": profile_data_to_dict(result.control_profile),
        "experiment_profile": profile_data_to_dict(
            result.experiment_profile),
    }
    chaos = getattr(result, "chaos", None)
    if chaos is not None:
        data["chaos"] = chaos_metrics_to_dict(chaos)
    policy_metrics = getattr(result, "policy_metrics", None)
    if policy_metrics is not None:
        data["policy_metrics"] = policy_metrics_to_dict(policy_metrics)
    return data


def ablation_result_from_dict(data: Dict):
    """Inverse of :func:`ablation_result_to_dict`.

    Payloads written before chaos studies (or policy studies) existed
    simply lack the ``chaos``/``policy_metrics`` keys and deserialize
    with those fields ``None``.
    """
    from repro.fleet.ablation import AblationResult

    try:
        chaos = data.get("chaos")
        policy_metrics = data.get("policy_metrics")
        return AblationResult(
            mode=data["mode"],
            control=fleet_metrics_from_dict(data["control"]),
            experiment=fleet_metrics_from_dict(data["experiment"]),
            control_profile=profile_data_from_dict(data["control_profile"]),
            experiment_profile=profile_data_from_dict(
                data["experiment_profile"]),
            chaos=None if chaos is None else chaos_metrics_from_dict(chaos),
            policy_metrics=(None if policy_metrics is None
                            else policy_metrics_from_dict(policy_metrics)),
        )
    except (KeyError, TypeError) as error:
        raise TraceError(
            f"malformed ablation result record: {error}") from error


def rollout_result_to_dict(result) -> Dict:
    """A rollout shard result as a plain dict (lossless: raw samples
    included, so a checkpointed shard restores bit-identically)."""
    data = {
        "before": fleet_metrics_to_dict(result.before,
                                        include_samples=True),
        "hard_only": fleet_metrics_to_dict(result.hard_only,
                                           include_samples=True),
        "full": fleet_metrics_to_dict(result.full, include_samples=True),
        "full_integrated": fleet_metrics_to_dict(result.full_integrated,
                                                 include_samples=True),
        "before_profile": profile_data_to_dict(result.before_profile),
        "hard_profile": profile_data_to_dict(result.hard_profile),
        "full_profile": profile_data_to_dict(result.full_profile),
    }
    chaos = getattr(result, "chaos", None)
    if chaos is not None:
        data["chaos"] = chaos_metrics_to_dict(chaos)
    return data


def rollout_result_from_dict(data: Dict):
    """Inverse of :func:`rollout_result_to_dict`."""
    from repro.fleet.rollout import RolloutResult

    try:
        chaos = data.get("chaos")
        return RolloutResult(
            before=fleet_metrics_from_dict(data["before"]),
            hard_only=fleet_metrics_from_dict(data["hard_only"]),
            full=fleet_metrics_from_dict(data["full"]),
            full_integrated=fleet_metrics_from_dict(data["full_integrated"]),
            before_profile=profile_data_from_dict(data["before_profile"]),
            hard_profile=profile_data_from_dict(data["hard_profile"]),
            full_profile=profile_data_from_dict(data["full_profile"]),
            chaos=None if chaos is None else chaos_metrics_from_dict(chaos),
        )
    except (KeyError, TypeError) as error:
        raise TraceError(
            f"malformed rollout result record: {error}") from error
