"""Serialization: traces and experiment results to portable JSON.

Traces round-trip losslessly through JSON Lines (one record per line), so
workloads captured once can be replayed across simulator versions and
shared alongside results. Experiment results flatten to plain dicts for
archiving next to the benchmark outputs.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.access.record import AccessKind, MemoryAccess
from repro.access.trace import Trace
from repro.errors import TraceError
from repro.memsys.stats import FunctionStats, RunResult

_PathLike = Union[str, pathlib.Path]


# --- traces -----------------------------------------------------------------

def access_to_dict(record: MemoryAccess) -> Dict:
    """One trace record as a plain dict (JSON-safe)."""
    return {
        "address": record.address,
        "size": record.size,
        "kind": record.kind.value,
        "pc": record.pc,
        "function": record.function,
        "gap_cycles": record.gap_cycles,
    }


def access_from_dict(data: Dict) -> MemoryAccess:
    """Inverse of :func:`access_to_dict`."""
    try:
        kind = AccessKind(data.get("kind", AccessKind.LOAD.value))
        return MemoryAccess(
            address=data["address"],
            size=data.get("size", 8),
            kind=kind,
            pc=data.get("pc", 0),
            function=data.get("function", ""),
            gap_cycles=data.get("gap_cycles", 0),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise TraceError(f"malformed trace record {data!r}: {error}") from error


def trace_to_dicts(trace: Trace) -> List[Dict]:
    """A whole trace as a list of plain dicts."""
    return [access_to_dict(record) for record in trace]


def trace_from_dicts(records: Iterable[Dict]) -> Trace:
    """Inverse of :func:`trace_to_dicts`."""
    return Trace(access_from_dict(record) for record in records)


def save_trace_jsonl(trace: Trace, path: _PathLike) -> None:
    """Write a trace as JSON Lines (one record per line)."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        for record in trace:
            handle.write(json.dumps(access_to_dict(record)) + "\n")


def load_trace_jsonl(path: _PathLike) -> Trace:
    """Read a trace written by :func:`save_trace_jsonl`."""
    path = pathlib.Path(path)
    records = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{line_number}: invalid JSON: {error}") from error
            records.append(access_from_dict(data))
    return Trace(records)


# --- results -----------------------------------------------------------------

def function_stats_to_dict(stats: FunctionStats) -> Dict:
    """One function's statistics as a plain dict, including the derived
    metrics the paper reports (MPKI, load-to-use)."""
    return {
        "instructions": stats.instructions,
        "compute_cycles": stats.compute_cycles,
        "stall_cycles": stats.stall_cycles,
        "cycles": stats.cycles,
        "loads": stats.loads,
        "stores": stats.stores,
        "software_prefetches": stats.software_prefetches,
        "l1_misses": stats.l1_misses,
        "l2_misses": stats.l2_misses,
        "llc_misses": stats.llc_misses,
        "llc_mpki": stats.llc_mpki,
        "prefetch_covered": stats.prefetch_covered,
        "late_prefetch_hits": stats.late_prefetch_hits,
        "average_load_to_use_ns": stats.average_load_to_use_ns,
    }


def run_result_to_dict(result: RunResult) -> Dict:
    """A simulator run's outcome as a plain dict."""
    return {
        "elapsed_ns": result.elapsed_ns,
        "dram_demand_fills": result.dram_demand_fills,
        "dram_prefetch_fills": result.dram_prefetch_fills,
        "dram_total_bytes": result.dram_total_bytes,
        "average_bandwidth": result.average_bandwidth,
        "prefetch_traffic_fraction": result.prefetch_traffic_fraction,
        "prefetch_accuracy": result.prefetch_accuracy,
        "hw_prefetches_issued": result.hw_prefetches_issued,
        "useful_prefetches": result.useful_prefetches,
        "wasted_prefetches": result.wasted_prefetches,
        "total": function_stats_to_dict(result.total),
        "functions": {name: function_stats_to_dict(stats)
                      for name, stats in sorted(result.functions.items())},
    }


def save_run_result(result: RunResult, path: _PathLike) -> None:
    """Archive a run result as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(run_result_to_dict(result), indent=2)
                    + "\n")


def fleet_metrics_to_dict(metrics, include_samples: bool = False) -> Dict:
    """A fleet run's metrics as a plain dict.

    By default only the summaries the evaluation quotes are included;
    ``include_samples`` additionally embeds every raw per-socket sample
    (large, but enough to recompute any percentile later).
    """
    bandwidth = metrics.bandwidth_summary()
    latency = metrics.latency_summary()
    data = {
        "epochs": metrics.epochs,
        "rejections": metrics.rejections,
        "total_qps": metrics.total_qps,
        "ideal_qps": metrics.ideal_qps,
        "normalized_throughput": metrics.normalized_throughput,
        "cpu_utilization_mean": metrics.cpu_utilization_mean(),
        "saturated_socket_fraction": metrics.saturated_socket_fraction(),
        "bandwidth": {"mean": bandwidth.mean, "p50": bandwidth.p50,
                      "p90": bandwidth.p90, "p99": bandwidth.p99,
                      "peak": bandwidth.peak},
        "latency_ns": {"mean": latency.mean, "p50": latency.p50,
                       "p90": latency.p90, "p99": latency.p99,
                       "peak": latency.peak},
        "throughput_by_cpu_band": metrics.throughput_by_cpu_band(),
        "bandwidth_by_cpu_bucket": metrics.bandwidth_by_cpu_bucket(),
    }
    if include_samples:
        data["samples"] = {
            "socket_bandwidth": list(metrics.socket_bandwidth),
            "socket_utilization": list(metrics.socket_utilization),
            "socket_latency": list(metrics.socket_latency),
            "machine_points": [list(point)
                               for point in metrics.machine_points],
        }
    return data


def save_fleet_metrics(metrics, path: _PathLike,
                       include_samples: bool = False) -> None:
    """Archive fleet metrics as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(
        fleet_metrics_to_dict(metrics, include_samples), indent=2) + "\n")
