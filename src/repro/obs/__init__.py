"""``repro.obs`` — the deterministic run-observability layer.

Every fleet study can emit, next to its result, a *run directory*:

* ``events.jsonl`` — a schema-versioned structured event log keyed to
  simulated time, merged across shards in deterministic order so serial
  and sharded executions of the same study produce byte-identical logs
  (the same contract the result merge obeys);
* ``manifest.json`` — what the run *was*: config digest, fault plan,
  seeds, shard plan, engine choice, plus a wall-clock execution overlay
  (worker count, per-phase and per-shard timings) that is explicitly
  outside the determinism contract.

``repro report <run-dir>`` renders both into a timeline and timing
breakdown; see :mod:`repro.obs.report`.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    read_events_jsonl,
    validate_event,
    write_events_jsonl,
)
from repro.obs.session import (
    MANIFEST_NAME,
    EVENTS_NAME,
    OBS_ENV_VAR,
    ObsSession,
    manifest_run_digest,
    read_manifest,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.report import build_report, render_report

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "EVENTS_NAME",
    "MANIFEST_NAME",
    "NULL_TRACER",
    "NullTracer",
    "OBS_ENV_VAR",
    "ObsSession",
    "Tracer",
    "build_report",
    "manifest_run_digest",
    "read_events_jsonl",
    "read_manifest",
    "render_report",
    "validate_event",
    "write_events_jsonl",
]
