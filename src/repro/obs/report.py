"""Render a run directory into a timeline and timing breakdown.

``repro report <run-dir>`` lands here. The human rendering shows the
run identity (study, engine, shards, cache disposition), the wall-clock
phase breakdown, per-shard simulated spans and wall times, result-cache
effectiveness, the incident ledger with MTTR, and a chronological
timeline of notable events — with an ASCII chart of disabled sockets
over simulated time when the run has controller activity. ``--json``
emits the same material as one machine-readable object; every event is
validated against the schema on load either way.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Tuple, Union

from repro.obs.events import read_events_jsonl
from repro.obs.session import EVENTS_NAME, read_manifest
from repro.units import SECOND

_PathLike = Union[str, pathlib.Path]

#: Event kinds surfaced on the human timeline (high-signal only; MSR
#: write attempts and sim-run markers stay in the raw log).
TIMELINE_KINDS = (
    "study-start", "cache-hit", "cache-miss", "shard-start",
    "controller-transition", "failsafe-engaged", "failsafe-released",
    "incident-open", "incident-resolved", "machine-restart",
    "shard-finish", "merge-step", "cache-store", "study-finish",
)

DEFAULT_TIMELINE_LIMIT = 40


def load_run(run_dir: _PathLike) -> Tuple[Dict, List[Dict]]:
    """A run directory's (manifest, validated events)."""
    run_dir = pathlib.Path(run_dir)
    manifest = read_manifest(run_dir)
    events = read_events_jsonl(run_dir / EVENTS_NAME, validate=True)
    return manifest, events


# --- analysis -----------------------------------------------------------------

def _by_kind(events: List[Dict]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return dict(sorted(counts.items()))


def _shard_rows(events: List[Dict], manifest: Dict) -> List[Dict]:
    """Per-shard event counts and simulated spans, in plan order."""
    spans: Dict[int, List[float]] = {}
    counts: Dict[int, int] = {}
    for event in events:
        shard = event.get("shard")
        if shard is None:
            continue
        counts[shard] = counts.get(shard, 0) + 1
        span = spans.setdefault(shard, [event["t_ns"], event["t_ns"]])
        span[0] = min(span[0], event["t_ns"])
        span[1] = max(span[1], event["t_ns"])
    walls = manifest["execution"].get("shard_wall_s", {})
    return [
        {"index": shard, "events": counts[shard],
         "sim_span_ns": spans[shard][1] - spans[shard][0],
         "wall_s": walls.get(str(shard))}
        for shard in sorted(counts)
    ]


def _incident_stats(events: List[Dict]) -> Dict:
    """Incident ledger: counts by kind, resolution, MTTR, detection lag."""
    opened: Dict[str, int] = {}
    resolved = 0
    recovery: List[float] = []
    detection: List[float] = []
    for event in events:
        if event["kind"] == "incident-open":
            opened[event["incident"]] = opened.get(event["incident"], 0) + 1
            detected = event.get("detected_ns", event["t_ns"])
            detection.append(detected - event["onset_ns"])
        elif event["kind"] == "incident-resolved":
            resolved += 1
            recovery.append(event["recovered_ns"] - event["detected_ns"])
    total = sum(opened.values())
    return {
        "count": total,
        "by_kind": dict(sorted(opened.items())),
        "resolved": resolved,
        "mttr_ns": (sum(recovery) / len(recovery)) if recovery else None,
        "mean_detection_ns": (sum(detection) / len(detection))
        if detection else None,
    }


def _cache_stats(events: List[Dict], manifest: Dict) -> Dict:
    counts = _by_kind(events)
    return {
        "disposition": manifest["execution"].get("cache", "off"),
        "hits": counts.get("cache-hit", 0),
        "misses": counts.get("cache-miss", 0),
        "stores": counts.get("cache-store", 0),
    }


def _disabled_series(events: List[Dict]) -> List[Tuple[float, float]]:
    """(sim seconds, sockets currently disabled) step series across all
    shards — the data behind the timeline chart."""
    disabled = set()
    series: List[Tuple[float, float]] = []
    transitions = [e for e in events if e["kind"] == "controller-transition"]
    transitions.sort(key=lambda e: (e["t_ns"], e["seq"]))
    for event in transitions:
        key = (event.get("shard"), event.get("arm"), event["ident"])
        if event["enabled"]:
            disabled.discard(key)
        else:
            disabled.add(key)
        series.append((event["t_ns"] / SECOND, float(len(disabled))))
    return series


def build_report(run_dir: _PathLike) -> Dict:
    """The machine-readable report (the ``--json`` payload)."""
    manifest, events = load_run(run_dir)
    return {
        "run_dir": str(run_dir),
        "manifest": manifest,
        "events": {"count": len(events), "by_kind": _by_kind(events)},
        "phases": manifest["execution"].get("phases", []),
        "shards": _shard_rows(events, manifest),
        "cache": _cache_stats(events, manifest),
        "incidents": _incident_stats(events),
        "transitions": sum(1 for e in events
                           if e["kind"] == "controller-transition"),
        "schema_ok": True,
    }


# --- human rendering ----------------------------------------------------------

def _fmt_table(header: Tuple[str, ...], rows: List[Tuple]) -> List[str]:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(header, *rows)] if rows else \
        [len(cell) for cell in header]

    def fmt(row):
        """One aligned table row."""
        return "  ".join(str(cell).rjust(width)
                         for cell, width in zip(row, widths))

    return [fmt(header), fmt(["-" * width for width in widths])] \
        + [fmt(row) for row in rows]


def _describe(event: Dict) -> str:
    """One timeline line's payload, per event kind."""
    kind = event["kind"]
    if kind == "controller-transition":
        return (f"{event['ident']} -> {event['state']} "
                f"(prefetchers {'on' if event['enabled'] else 'OFF'})")
    if kind == "msr-write":
        return (f"{event['ident']} write "
                f"{'enable' if event['enabled'] else 'disable'} "
                f"{'ok' if event['ok'] else 'FAILED'}")
    if kind == "failsafe-engaged":
        dark = (event["t_ns"] - event["dark_since_ns"]) / SECOND
        return f"{event['ident']} fail-safe engaged (dark {dark:.0f}s)"
    if kind == "failsafe-released":
        return f"{event['ident']} fail-safe released"
    if kind == "incident-open":
        return f"{event['ident']} incident: {event['incident']}"
    if kind == "incident-resolved":
        mttr = (event["recovered_ns"] - event["detected_ns"]) / SECOND
        return (f"{event['ident']} recovered: {event['incident']} "
                f"(after {mttr:.0f}s)")
    if kind == "machine-restart":
        return f"{event['ident']} machine restart ({event['policy']})"
    if kind == "shard-start":
        return (f"shard {event['index']} start "
                f"({event['machines']} machines, seed {event['seed']})")
    if kind == "shard-finish":
        return f"shard {event['index']} finish ({event['epochs']} epochs)"
    if kind == "merge-step":
        return f"merge shard {event['index']}"
    if kind in ("cache-hit", "cache-miss", "cache-store"):
        return f"{kind} {event['key'][:16]}…"
    return event.get("study", "")


def render_report(run_dir: _PathLike,
                  timeline_limit: int = DEFAULT_TIMELINE_LIMIT) -> str:
    """The human-readable run report."""
    manifest, events = load_run(run_dir)
    report = build_report(run_dir)
    run = manifest["run"]
    execution = manifest["execution"]
    lines: List[str] = []

    lines.append(f"run: {run['study']} — {run_dir}")
    mode = (run.get("material") or {}).get("mode")
    descriptor = [f"engine={run['engine']}", f"shards={run['shards']}",
                  f"workers={execution['workers']}",
                  f"cache={execution.get('cache', 'off')}",
                  f"events={run['events']}"]
    if mode:
        descriptor.insert(0, f"mode={mode}")
    if run.get("fault_plan"):
        descriptor.append(f"fault-plan={run['fault_plan']}")
    lines.append("  " + "  ".join(descriptor))
    lines.append("")

    lines.append("timing breakdown (wall clock)")
    total_wall = execution.get("wall_s") or 0.0
    phase_rows = [(p["name"], f"{p['wall_s']:.3f}s",
                   f"{p['wall_s'] / total_wall:.0%}" if total_wall else "-")
                  for p in report["phases"]]
    phase_rows.append(("total", f"{total_wall:.3f}s", "100%"))
    lines += _fmt_table(("phase", "wall", "share"), phase_rows)
    lines.append("")

    if report["shards"]:
        lines.append("shards")
        rows = [(s["index"], s["events"],
                 f"{s['sim_span_ns'] / SECOND:.0f}s",
                 f"{s['wall_s']:.3f}s" if s["wall_s"] is not None else "-")
                for s in report["shards"]]
        lines += _fmt_table(("shard", "events", "sim span", "wall"), rows)
        lines.append("")

    cache = report["cache"]
    lines.append(f"result cache: {cache['disposition']} "
                 f"(hits={cache['hits']} misses={cache['misses']} "
                 f"stores={cache['stores']})")

    incidents = report["incidents"]
    if incidents["count"]:
        mttr = incidents["mttr_ns"]
        detect = incidents["mean_detection_ns"]
        lines.append(
            f"incidents: {incidents['count']} opened, "
            f"{incidents['resolved']} resolved, MTTR "
            + (f"{mttr / SECOND:.1f}s" if mttr is not None else "n/a")
            + ", mean detection "
            + (f"{detect / SECOND:.1f}s" if detect is not None else "n/a"))
        for kind, count in incidents["by_kind"].items():
            lines.append(f"  {kind}: {count}")
    else:
        lines.append("incidents: none")
    lines.append("")

    series = _disabled_series(events)
    if len(series) >= 2:
        from repro.telemetry.ascii_chart import line_chart
        lines.append("sockets with prefetchers disabled over simulated time")
        lines.append(line_chart({"disabled sockets": series},
                                x_label="sim time (s)",
                                y_label="sockets disabled"))
        lines.append("")

    notable = [e for e in events if e["kind"] in TIMELINE_KINDS]
    lines.append(f"timeline ({min(len(notable), timeline_limit)} of "
                 f"{len(notable)} notable events)")
    for event in notable[:timeline_limit]:
        shard = event.get("shard")
        origin = "study" if shard is None else f"shard {shard}"
        arm = event.get("arm")
        if arm:
            origin += f"/{arm}"
        lines.append(f"  t={event['t_ns'] / SECOND:8.1f}s  "
                     f"[{origin:>12}]  {event['kind']}: "
                     f"{_describe(event)}")
    if len(notable) > timeline_limit:
        lines.append(f"  … and {len(notable) - timeline_limit} more "
                     f"(see {EVENTS_NAME})")
    return "\n".join(lines)
