"""The structured event schema and its JSONL encoding.

Every event is a flat JSON object with a common envelope:

* ``v`` — event schema version (:data:`EVENT_SCHEMA_VERSION`);
* ``kind`` — one of :data:`EVENT_TYPES`;
* ``t_ns`` — simulated time (floats; shard-local clocks start at 0);
* ``seq`` — global sequence number, assigned once at merge time;
* ``shard`` — originating shard index, or ``None`` for study-level
  events (cache probes, merge steps).

Per-kind required fields are listed in :data:`EVENT_TYPES`; extra
fields (for example the ``arm`` tag a study pushes around each fleet
arm) are permitted. Logs are written as canonical JSON Lines — sorted
keys, no whitespace — so two logs are byte-identical exactly when their
event sequences are equal, which is what the serial-vs-sharded
determinism tests compare.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.errors import TraceError
from repro.serialization import canonical_json

#: Bumped whenever an event's meaning or required fields change.
EVENT_SCHEMA_VERSION = 1

#: kind -> required field names (beyond the envelope).
EVENT_TYPES: Dict[str, tuple] = {
    # study orchestration
    "study-start": ("study",),
    "study-finish": ("study",),
    "shard-start": ("index", "machines", "seed"),
    "shard-finish": ("index", "epochs"),
    "merge-step": ("index",),
    # checkpointed work-queue (study-level, emitted in plan order):
    # this run journaled the shard fresh vs. restored it from the journal
    "shard-checkpoint": ("index",),
    "shard-restored": ("index",),
    # adaptive sampling (study-level): one event per evaluation round,
    # plus one per arm the round retires early
    "adaptive-round": ("round",),
    "arm-early-stop": ("arm", "round"),
    # result cache
    "cache-hit": ("key",),
    "cache-miss": ("key",),
    "cache-store": ("key",),
    # control plane (per-socket daemons)
    "controller-transition": ("ident", "state", "enabled"),
    # a pluggable policy flipped the socket-level prefetcher state
    "policy-decision": ("ident", "policy", "enabled"),
    "msr-write": ("ident", "enabled", "ok"),
    "failsafe-engaged": ("ident", "dark_since_ns"),
    "failsafe-released": ("ident",),
    "incident-open": ("ident", "incident", "onset_ns"),
    "incident-resolved": ("ident", "incident", "detected_ns",
                          "recovered_ns"),
    "machine-restart": ("ident", "policy"),
    # simulator
    "sim-run": ("accesses",),
}

_PathLike = Union[str, pathlib.Path]


def validate_event(event: Dict, merged: bool = True) -> None:
    """Check one event against the schema; raises :class:`TraceError`.

    ``merged`` additionally requires the merge-time envelope fields
    (``seq`` and ``shard``) that per-shard tracers do not carry yet.
    """
    if not isinstance(event, dict):
        raise TraceError(f"event must be an object, got {type(event).__name__}")
    if event.get("v") != EVENT_SCHEMA_VERSION:
        raise TraceError(
            f"unsupported event schema version {event.get('v')!r} "
            f"(expected {EVENT_SCHEMA_VERSION})")
    kind = event.get("kind")
    if kind not in EVENT_TYPES:
        raise TraceError(f"unknown event kind {kind!r}")
    if not isinstance(event.get("t_ns"), (int, float)):
        raise TraceError(f"event {kind!r} lacks a numeric t_ns")
    for field in EVENT_TYPES[kind]:
        if field not in event:
            raise TraceError(f"event {kind!r} missing required field "
                             f"{field!r}: {event!r}")
    if merged:
        if not isinstance(event.get("seq"), int):
            raise TraceError(f"merged event {kind!r} lacks an integer seq")
        if "shard" not in event:
            raise TraceError(f"merged event {kind!r} lacks a shard field")
        shard = event["shard"]
        if shard is not None and not isinstance(shard, int):
            raise TraceError(f"event shard must be an index or null, "
                             f"got {shard!r}")


def canonical_event_line(event: Dict) -> str:
    """One event as its canonical JSONL line (sorted keys, compact)."""
    return canonical_json(event)


def write_events_jsonl(events: Iterable[Dict], path: _PathLike) -> None:
    """Write events as canonical JSON Lines (atomically: temp file +
    ``os.replace``, so a crash mid-finalize never leaves a torn log)."""
    from repro.serialization import atomic_write_text

    lines = [canonical_event_line(event) + "\n" for event in events]
    atomic_write_text(pathlib.Path(path), "".join(lines))


def read_events_jsonl(path: _PathLike, validate: bool = True) -> List[Dict]:
    """Read an event log; optionally validate every record."""
    path = pathlib.Path(path)
    events = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{line_number}: invalid JSON: {error}") from error
            if validate:
                try:
                    validate_event(event)
                except TraceError as error:
                    raise TraceError(
                        f"{path}:{line_number}: {error}") from error
            events.append(event)
    return events
