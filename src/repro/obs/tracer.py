"""Span/event tracing primitives for deterministic run observability.

Two clocks, deliberately separated:

* **Simulated time** (``t_ns``) is deterministic — a pure function of the
  study parameters — and is the only clock that enters the structured
  event log, so serial and sharded runs of the same study can produce
  byte-identical logs.
* **Wall-clock** timings (phases, spans) come from ``time.monotonic()``
  and are kept on the tracer as a separate overlay; they end up in the
  manifest's ``execution`` block, which is outside the determinism
  contract.

Disabled tracing must cost nothing on hot paths, so call sites guard
with truthiness (``if tracer: tracer.event(...)``): :data:`NULL_TRACER`
is falsy and every one of its methods is a no-op, which means a disabled
daemon tick performs a single branch and allocates nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

from repro.obs.events import EVENT_SCHEMA_VERSION


class NullTracer:
    """The disabled tracer: falsy, stateless, every method a no-op.

    A single shared instance (:data:`NULL_TRACER`) stands in wherever a
    tracer is optional, so instrumented code never needs ``None`` checks
    beyond the idiomatic ``if tracer:`` guard.
    """

    __slots__ = ()

    enabled = False

    def __bool__(self) -> bool:
        return False

    def event(self, kind: str, t_ns: float, **fields) -> None:
        """Discard the event."""

    @contextmanager
    def context(self, **fields) -> Iterator[None]:
        """No-op context scope."""
        yield

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """No-op wall-clock phase."""
        yield


#: The shared disabled tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects structured events (simulated time) and phase timings
    (wall clock) for one execution scope — a study or a single shard.

    Events are plain dicts carrying the schema version, the kind, the
    simulated timestamp, any fields pushed by enclosing
    :meth:`context` scopes, and the call's own fields. Emission order is
    the deterministic merge order within the scope.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict] = []
        #: (name, wall_seconds) per completed :meth:`phase`, in
        #: completion order. Wall clock only — never merged into logs.
        self.phases: List[Tuple[str, float]] = []
        self._ctx: Dict = {}

    def __bool__(self) -> bool:
        return True

    def event(self, kind: str, t_ns: float, **fields) -> None:
        """Record one event at simulated time ``t_ns``."""
        record: Dict = {"v": EVENT_SCHEMA_VERSION, "kind": kind,
                        "t_ns": float(t_ns)}
        record.update(self._ctx)
        record.update(fields)
        self.events.append(record)

    @contextmanager
    def context(self, **fields) -> Iterator[None]:
        """Attach ``fields`` to every event emitted inside the scope
        (e.g. ``arm="experiment"`` around one study arm)."""
        saved = self._ctx
        self._ctx = {**saved, **fields}
        try:
            yield
        finally:
            self._ctx = saved

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a wall-clock phase; recorded on :attr:`phases`."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.phases.append((name, time.monotonic() - start))
