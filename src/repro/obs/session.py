"""Study-level observability sessions and the run manifest.

An :class:`ObsSession` is owned by a study's ``run()`` call. It collects
study-level events (cache probes, merge steps), splices in each shard's
event list in plan order, times wall-clock phases, and finally writes
the run directory:

* ``events.jsonl`` — the merged deterministic event log. Study-level
  events carry ``shard: null``; shard events carry their plan index.
  Global ``seq`` numbers are assigned over the final order, so the
  bytes depend only on the study parameters — never on the worker
  count (the PR 1 merge contract, extended to logs).
* ``manifest.json`` — a ``run`` block (deterministic identity: study
  kind, cache-key material, fault plan, shard seeds, engine choice,
  event count and digest) plus an ``execution`` block (wall-clock
  overlay: worker count, phase and shard timings, cache disposition)
  that is explicitly outside the determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import TraceError
from repro.serialization import atomic_write_text
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    canonical_event_line,
    write_events_jsonl,
)
from repro.obs.tracer import Tracer

#: Environment override for the default run-directory location; unset or
#: empty leaves observability off.
OBS_ENV_VAR = "REPRO_OBS_DIR"

#: Bumped whenever the manifest layout changes meaning.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"

_PathLike = Union[str, pathlib.Path]


def resolve_obs_dir(obs_dir: Optional[str] = None) -> Optional[str]:
    """The run directory to write: explicit arg, else ``$REPRO_OBS_DIR``,
    else ``None`` (observability off)."""
    if obs_dir is None:
        obs_dir = os.environ.get(OBS_ENV_VAR, "").strip() or None
    return obs_dir or None


def engine_choice() -> str:
    """Which simulation engine this process would use (manifest field)."""
    from repro.memsys.hierarchy import _slow_engine_requested

    return "interpreter" if _slow_engine_requested() else "compiled"


class ObsSession:
    """Observability for one study execution.

    Args:
        out_dir: Run directory (created on finalize).
        study: Study kind for the manifest (``"ablation"`` etc.).
        workers: The resolved worker count (execution overlay only).
    """

    def __init__(self, out_dir: _PathLike, study: str,
                 workers: int = 1) -> None:
        self.dir = pathlib.Path(out_dir)
        self.study = study
        self.workers = workers
        self._events: List[Dict] = []
        self._phases: List[Dict] = []
        self._shard_walls: Dict[int, float] = {}
        self._cache: str = "off"
        self._queue: Optional[Dict] = None
        self._start = time.monotonic()

    # --- event collection ------------------------------------------------------

    def event(self, kind: str, t_ns: float = 0.0, **fields) -> None:
        """Record one study-level event (``shard: null``)."""
        record: Dict = {"v": EVENT_SCHEMA_VERSION, "kind": kind,
                        "t_ns": float(t_ns), "shard": None}
        record.update(fields)
        self._events.append(record)

    def add_shard(self, index: int, events: Sequence[Dict],
                  wall_s: Optional[float] = None) -> None:
        """Splice one shard's events (plan order) into the merged log."""
        for event in events:
            tagged = dict(event)
            tagged["shard"] = index
            self._events.append(tagged)
        if wall_s is not None:
            self._shard_walls[index] = wall_s

    def cache_probe(self, hit: Optional[bool], key: str) -> None:
        """Record the result-cache disposition (and its event)."""
        if hit is None:
            self._cache = "off"
            return
        self._cache = "hit" if hit else "miss"
        self.event("cache-hit" if hit else "cache-miss", key=key)

    def queue_stats(self, stats) -> None:
        """Record the checkpointed work-queue disposition (execution
        overlay; a :class:`~repro.fleet.queue.QueueStats`)."""
        self._queue = stats.to_dict()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a wall-clock phase of the study (execution overlay)."""
        start = time.monotonic()
        try:
            yield
        finally:
            self._phases.append(
                {"name": name, "wall_s": time.monotonic() - start})

    def shard_tracer(self) -> Tracer:
        """A tracer for an in-process (unsharded) execution; pair with
        :meth:`add_shard` once it completes."""
        return Tracer()

    # --- output ----------------------------------------------------------------

    def finalize(self, material: Dict,
                 shard_seeds: Optional[Sequence[int]] = None,
                 fault_plan: Optional[str] = None) -> pathlib.Path:
        """Assign sequence numbers, write ``events.jsonl`` and
        ``manifest.json``; returns the run directory."""
        self.dir.mkdir(parents=True, exist_ok=True)
        for seq, event in enumerate(self._events):
            event["seq"] = seq
        events_path = self.dir / EVENTS_NAME
        write_events_jsonl(self._events, events_path)
        digest = hashlib.sha256()
        for event in self._events:
            digest.update((canonical_event_line(event) + "\n").encode())
        manifest = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "run": {
                "study": self.study,
                "material": material,
                "fault_plan": fault_plan,
                "shard_seeds": (list(shard_seeds)
                                if shard_seeds is not None else []),
                "shards": (len(shard_seeds)
                           if shard_seeds is not None else 0),
                "engine": engine_choice(),
                "event_schema": EVENT_SCHEMA_VERSION,
                "events": len(self._events),
                "events_digest": digest.hexdigest(),
            },
            "execution": {
                "workers": self.workers,
                "wall_s": time.monotonic() - self._start,
                "phases": self._phases,
                "shard_wall_s": {str(index): wall for index, wall
                                 in sorted(self._shard_walls.items())},
                "cache": self._cache,
                "queue": self._queue,
            },
        }
        atomic_write_text(
            self.dir / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return self.dir


def read_manifest(run_dir: _PathLike) -> Dict:
    """Load and sanity-check a run directory's manifest."""
    path = pathlib.Path(run_dir) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except OSError as error:
        raise TraceError(f"cannot read manifest {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise TraceError(f"{path}: invalid JSON: {error}") from error
    if not isinstance(manifest, dict) \
            or manifest.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise TraceError(
            f"{path}: unsupported manifest schema "
            f"{manifest.get('schema') if isinstance(manifest, dict) else manifest!r}")
    for block in ("run", "execution"):
        if not isinstance(manifest.get(block), dict):
            raise TraceError(f"{path}: missing {block!r} block")
    return manifest


def manifest_run_digest(manifest: Dict) -> str:
    """Content hash of the manifest's deterministic ``run`` block.

    Two cold runs of the same study — serial or sharded, at any worker
    count — digest equal; the ``execution`` overlay (workers, wall
    times) is deliberately excluded. A cache *hit* digests differently
    from a cold run because its event log records the reuse instead of
    the shard execution.
    """
    payload = json.dumps(manifest["run"], sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()
