"""The simulated MSR register file."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.errors import MSRAccessError, UnknownRegisterError


class MSRFile:
    """A per-socket bank of 64-bit model-specific registers.

    Registers must be declared (with a reset value) before they can be read
    or written, mirroring how real platforms only implement a sparse set of
    addresses; accessing an undeclared address raises
    :class:`~repro.errors.UnknownRegisterError`, as ``rdmsr`` on real
    hardware raises #GP.

    Observers can subscribe to writes; the simulated socket uses this to
    react immediately when the Limoncello actuator flips prefetcher bits.
    """

    _MASK = (1 << 64) - 1

    def __init__(self) -> None:
        self._registers: Dict[int, int] = {}
        self._observers: List[Callable[[int, int], None]] = []
        self.write_count = 0
        self.read_count = 0

    def declare(self, address: int, reset_value: int = 0) -> None:
        """Make ``address`` a valid register with the given reset value."""
        if not 0 <= reset_value <= self._MASK:
            raise ValueError(f"reset value out of 64-bit range: {reset_value:#x}")
        self._registers[address] = reset_value

    def declared(self, address: int) -> bool:
        """Whether an address is a valid register."""
        return address in self._registers

    def rdmsr(self, address: int) -> int:
        """Read a register; raises for undeclared addresses."""
        try:
            value = self._registers[address]
        except KeyError:
            raise UnknownRegisterError(address) from None
        self.read_count += 1
        return value

    def wrmsr(self, address: int, value: int) -> None:
        """Write a register; raises for undeclared addresses."""
        if address not in self._registers:
            raise UnknownRegisterError(address)
        if not 0 <= value <= self._MASK:
            raise ValueError(f"value out of 64-bit range: {value:#x}")
        self._registers[address] = value
        self.write_count += 1
        for observer in self._observers:
            observer(address, value)

    def set_bits(self, address: int, mask: int) -> None:
        """Read-modify-write: set every bit in ``mask``."""
        self.wrmsr(address, self.rdmsr(address) | mask)

    def clear_bits(self, address: int, mask: int) -> None:
        """Read-modify-write: clear every bit in ``mask``."""
        self.wrmsr(address, self.rdmsr(address) & ~mask & self._MASK)

    def subscribe(self, observer: Callable[[int, int], None]) -> None:
        """Call ``observer(address, value)`` after every successful write."""
        self._observers.append(observer)


class FaultyMSRFile(MSRFile):
    """An :class:`MSRFile` whose writes can transiently fail.

    Models ``wrmsr`` attempts racing with power-management firmware or the
    msr driver returning ``EBUSY``. The Limoncello daemon must retry rather
    than silently believing the prefetcher state changed.
    """

    def __init__(self, failure_rate: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__()
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self._failure_rate = failure_rate
        self._rng = rng or random.Random(0)
        self.failed_writes = 0

    def wrmsr(self, address: int, value: int) -> None:
        """Write a register; raises for undeclared addresses."""
        if self._failure_rate and self._rng.random() < self._failure_rate:
            self.failed_writes += 1
            raise MSRAccessError(f"transient wrmsr failure at {address:#x}")
        super().wrmsr(address, value)


class DegradingMSRFile(MSRFile):
    """An :class:`MSRFile` whose writes fail permanently after a budget.

    Models a dying msr driver (or firmware lockdown kicking in): the
    first ``fail_after_writes`` writes succeed, every later write raises.
    Reads keep working — the daemon can still see the stuck state, which
    is what its bounded :class:`~repro.core.config.RetryPolicy` and
    incident log are for.
    """

    def __init__(self, fail_after_writes: int) -> None:
        super().__init__()
        if fail_after_writes < 0:
            raise ValueError(
                f"fail_after_writes must be non-negative, got "
                f"{fail_after_writes}")
        self._fail_after_writes = fail_after_writes
        self.failed_writes = 0

    @property
    def broken(self) -> bool:
        """Whether the write budget is exhausted."""
        return self.write_count >= self._fail_after_writes

    def wrmsr(self, address: int, value: int) -> None:
        """Write a register; fails permanently once the budget is spent."""
        if self.broken:
            self.failed_writes += 1
            raise MSRAccessError(
                f"permanent wrmsr failure at {address:#x} after "
                f"{self.write_count} writes")
        super().wrmsr(address, value)
