"""Per-platform prefetcher control register definitions.

"The register addresses and values vary for different vendors/platforms.
For a given platform, we disable all prefetchers in the platform."
(Section 3.) We model two vendor families with deliberately different
register layouts so the actuator code must genuinely dispatch on platform,
as the deployed system does:

* An Intel-like layout: one ``MISC_FEATURE_CONTROL`` register at ``0x1A4``
  where *setting* a bit *disables* the corresponding prefetcher.
* An AMD-like layout: two ``DE_CFG``-style registers where prefetchers are
  controlled by disable bits spread across both registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.msr.registers import MSRFile


@dataclass(frozen=True)
class PrefetcherControl:
    """Where one prefetcher's disable bit lives."""

    name: str
    register: int
    disable_bit: int

    @property
    def mask(self) -> int:
        """Bit mask for this control's disable bit."""
        return 1 << self.disable_bit


class PlatformMSRMap:
    """The set of prefetcher controls for one platform generation."""

    def __init__(self, vendor: str, controls: Tuple[PrefetcherControl, ...]) -> None:
        if not controls:
            raise ConfigError("a platform MSR map needs at least one control")
        names = [control.name for control in controls]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate prefetcher names in MSR map: {names}")
        self.vendor = vendor
        self.controls = controls

    @property
    def registers(self) -> Tuple[int, ...]:
        """Distinct register addresses used by this map, sorted."""
        return tuple(sorted({control.register for control in self.controls}))

    def control(self, name: str) -> PrefetcherControl:
        """Look up a prefetcher control by name."""
        for candidate in self.controls:
            if candidate.name == name:
                return candidate
        raise ConfigError(f"platform has no prefetcher named {name!r}")

    def declare_registers(self, msr_file: MSRFile) -> None:
        """Declare every register this map needs (reset: all enabled)."""
        for register in self.registers:
            if not msr_file.declared(register):
                msr_file.declare(register, reset_value=0)

    def register_mask(self, register: int) -> int:
        """Combined disable-bit mask of every control in ``register``.

        Fault injectors use this to model torn multi-register writes —
        flipping one register's controls while leaving the rest alone.
        """
        return self._register_mask(register)

    def disable_all(self, msr_file: MSRFile) -> None:
        """Set every disable bit — the actuation Hard Limoncello performs."""
        for register in self.registers:
            mask = self._register_mask(register)
            msr_file.set_bits(register, mask)

    def enable_all(self, msr_file: MSRFile) -> None:
        """Clear every disable bit."""
        for register in self.registers:
            mask = self._register_mask(register)
            msr_file.clear_bits(register, mask)

    def disable_one(self, msr_file: MSRFile, name: str) -> None:
        """Set one prefetcher's disable bit."""
        control = self.control(name)
        msr_file.set_bits(control.register, control.mask)

    def enable_one(self, msr_file: MSRFile, name: str) -> None:
        """Clear one prefetcher's disable bit."""
        control = self.control(name)
        msr_file.clear_bits(control.register, control.mask)

    def enabled_prefetchers(self, msr_file: MSRFile) -> Dict[str, bool]:
        """Map of prefetcher name -> enabled, as read back from registers."""
        state = {}
        for control in self.controls:
            value = msr_file.rdmsr(control.register)
            state[control.name] = not (value & control.mask)
        return state

    def all_enabled(self, msr_file: MSRFile) -> bool:
        """True iff every prefetcher reads back enabled."""
        return all(self.enabled_prefetchers(msr_file).values())

    def all_disabled(self, msr_file: MSRFile) -> bool:
        """True iff every prefetcher reads back disabled."""
        return not any(self.enabled_prefetchers(msr_file).values())

    def _register_mask(self, register: int) -> int:
        mask = 0
        for control in self.controls:
            if control.register == register:
                mask |= control.mask
        return mask


#: MISC_FEATURE_CONTROL-style layout: four prefetchers, one register.
INTEL_LIKE_MAP = PlatformMSRMap(
    vendor="intel-like",
    controls=(
        PrefetcherControl("l2_stream", register=0x1A4, disable_bit=0),
        PrefetcherControl("l2_adjacent_line", register=0x1A4, disable_bit=1),
        PrefetcherControl("l1_stride", register=0x1A4, disable_bit=2),
        PrefetcherControl("l1_next_line", register=0x1A4, disable_bit=3),
    ),
)

#: DE_CFG-style layout: controls spread across two registers.
AMD_LIKE_MAP = PlatformMSRMap(
    vendor="amd-like",
    controls=(
        PrefetcherControl("l1_stride", register=0xC0000108, disable_bit=1),
        PrefetcherControl("l1_region", register=0xC0000108, disable_bit=3),
        PrefetcherControl("l2_stream", register=0xC0000110, disable_bit=0),
        PrefetcherControl("l2_up_down", register=0xC0000110, disable_bit=5),
    ),
)

_VENDOR_MAPS = {
    "intel-like": INTEL_LIKE_MAP,
    "amd-like": AMD_LIKE_MAP,
}


def msr_map_for_vendor(vendor: str) -> PlatformMSRMap:
    """Look up the MSR map for a vendor family."""
    try:
        return _VENDOR_MAPS[vendor]
    except KeyError:
        raise ConfigError(
            f"unknown vendor {vendor!r}; known: {sorted(_VENDOR_MAPS)}") from None
