"""Simulated model-specific registers (MSRs) and prefetcher control maps.

The real Limoncello actuates hardware prefetchers by writing vendor- and
platform-specific MSRs (Section 3, "Actuating Prefetcher Controls"). This
package reproduces that interface exactly — ``rdmsr``/``wrmsr`` against a
per-socket register file, with per-platform register maps describing which
bits disable which prefetchers — but backed by a simulated register file
that the simulated cache hierarchy honours.
"""

from repro.msr.registers import DegradingMSRFile, FaultyMSRFile, MSRFile
from repro.msr.platform_defs import (
    PrefetcherControl,
    PlatformMSRMap,
    INTEL_LIKE_MAP,
    AMD_LIKE_MAP,
    msr_map_for_vendor,
)

__all__ = [
    "MSRFile",
    "FaultyMSRFile",
    "DegradingMSRFile",
    "PrefetcherControl",
    "PlatformMSRMap",
    "INTEL_LIKE_MAP",
    "AMD_LIKE_MAP",
    "msr_map_for_vendor",
]
