"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` raised
by Python itself) from domain failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Also a :class:`ValueError`: a bad knob (e.g. ``REPRO_WORKERS=-2``)
    is a bad value, and callers outside this library reasonably catch it
    as one.
    """


class MSRError(ReproError):
    """Base class for simulated model-specific-register failures."""


class UnknownRegisterError(MSRError):
    """A read or write targeted a register address the platform lacks."""

    def __init__(self, address: int) -> None:
        super().__init__(f"unknown MSR address {address:#x}")
        self.address = address


class MSRAccessError(MSRError):
    """An injected fault prevented the register access from completing."""


class SchedulingError(ReproError):
    """The cluster scheduler could not satisfy a placement request."""


class TelemetryError(ReproError):
    """Telemetry collection failed (for example, a sampler dropout)."""


class TraceError(ReproError):
    """A memory trace was malformed or internally inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an internally inconsistent state."""


class QueueInterrupted(ReproError):
    """A checkpointed work-queue stopped before computing every shard.

    Raised by the abort-after knob (``REPRO_QUEUE_ABORT_AFTER``), which
    CI and tests use to interrupt a study at a deterministic point.
    Every shard finished before the interruption is already journaled —
    atomically — so re-running the same study with the same checkpoint
    directory resumes instead of restarting.
    """
