"""Telemetry feature extraction for control policies.

Every policy sees the same fixed feature schema (:data:`FEATURE_NAMES`),
extracted per telemetry sample by :class:`FeatureExtractor`:

* ``utilization`` — the raw bandwidth-utilization sample the hysteresis
  controller already consumes;
* ``util_mean`` — mean utilization over a trailing window (one sustain
  duration by default), the smoothed signal the sustain timer
  approximates;
* ``util_slope`` — per-sample utilization trend over that window
  (positive while a burst is building, negative as it drains);
* ``duty_cycle`` — the fraction of samples so far with prefetchers
  disabled, the controller's own recent behaviour fed back as context;
* ``accuracy`` / ``coverage`` — per-prefetcher usefulness measured
  offline from the cycle-accurate simulator (``memsys.stats``: useful /
  issued prefetches, and prefetch-covered / (covered + LLC misses)).
  The analytic fleet cannot observe these online, so trained policies
  carry the offline measurements as static per-prefetcher features
  (see :mod:`repro.policy.trainer`).

Extraction is pure arithmetic over the sample stream — no RNG draws,
no wall-clock reads — so feature vectors, and therefore every policy
decision, are bit-identical across serial, sharded, and batched runs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

#: The fixed feature schema, in canonical order. Decision-tree splits
#: iterate features in this order, which is part of what makes training
#: deterministic.
FEATURE_NAMES: Tuple[str, ...] = (
    "utilization",
    "util_mean",
    "util_slope",
    "duty_cycle",
    "accuracy",
    "coverage",
)

#: Bumped whenever a feature's meaning changes; serialized policies
#: carry it so a policy trained under an older schema never silently
#: misreads features.
FEATURE_SCHEMA_VERSION = 1


def feature_vector(utilization: float = 0.0, util_mean: float = 0.0,
                   util_slope: float = 0.0, duty_cycle: float = 0.0,
                   accuracy: float = 0.0,
                   coverage: float = 0.0) -> Dict[str, float]:
    """A complete feature dict in the canonical schema."""
    return {
        "utilization": utilization,
        "util_mean": util_mean,
        "util_slope": util_slope,
        "duty_cycle": duty_cycle,
        "accuracy": accuracy,
        "coverage": coverage,
    }


class FeatureExtractor:
    """Turns a utilization sample stream into policy feature vectors.

    Args:
        span_ns: Trailing window for the mean/slope features. Use the
            controller's sustain duration so learned policies see the
            same timescale the hysteresis design reasons about.
    """

    def __init__(self, span_ns: float) -> None:
        if span_ns <= 0:
            raise ValueError(f"window span must be positive, got {span_ns}")
        self.span_ns = span_ns
        self._window: Deque[Tuple[float, float]] = deque()
        self._window_sum = 0.0
        self._samples = 0
        self._disabled_samples = 0

    def reset(self) -> None:
        """Drop volatile window state (machine restart). Cumulative
        duty-cycle counters survive, like the daemon's own report."""
        self._window.clear()
        self._window_sum = 0.0

    def note_state(self, prefetchers_enabled: bool) -> None:
        """Record the applied prefetcher state for the duty-cycle
        feature (call once per decided sample)."""
        self._samples += 1
        if not prefetchers_enabled:
            self._disabled_samples += 1

    def duty_cycle(self) -> float:
        """Fraction of noted samples with prefetchers disabled."""
        if self._samples == 0:
            return 0.0
        return self._disabled_samples / self._samples

    def observe(self, time_ns: float, utilization: float
                ) -> Dict[str, float]:
        """Fold one sample in and return the feature vector for it.

        Per-prefetcher ``accuracy``/``coverage`` default to 0.0 here;
        policies carrying offline measurements overlay them per
        prefetcher before deciding.
        """
        self._window.append((time_ns, utilization))
        self._window_sum += utilization
        horizon = time_ns - self.span_ns
        while self._window and self._window[0][0] <= horizon:
            _, old = self._window.popleft()
            self._window_sum -= old
        count = len(self._window)
        mean = self._window_sum / count if count else utilization
        if count >= 2:
            first = self._window[0][1]
            slope = (utilization - first) / (count - 1)
        else:
            slope = 0.0
        return feature_vector(
            utilization=utilization,
            util_mean=mean,
            util_slope=slope,
            duty_cycle=self.duty_cycle(),
        )
