"""Offline decision-tree training from cached study results.

``repro policy train`` distils the threshold-band oracle — plus
throughput evidence for the ambiguous in-band region — into
per-prefetcher :class:`~repro.policy.tree.DecisionTreePolicy` trees.
Training consumes the same content-hashed machinery every other study
uses, so retraining from warm caches is nearly free and bit-identical:

1. A paired ``mode="off"`` :class:`~repro.fleet.ablation.AblationStudy`
   supplies aligned (control: prefetchers on, experiment: prefetchers
   off) machine-epoch observations through the study result cache.
2. Per-prefetcher accuracy/coverage comes from single-prefetcher
   :class:`~repro.fleet.sweep.MicroFleetSweep` probes (cycle-accurate
   ``memsys.stats`` counters), each cached under its own key.
3. Labels: out-of-band samples take the oracle label directly (above
   the upper threshold ⇒ disable, below the lower ⇒ enable); in-band
   samples disable a prefetcher only when the measured throughput gain
   from ablation exceeds ``kappa`` × that prefetcher's accuracy ×
   coverage — valuable prefetchers need stronger evidence to turn off.

Everything is a pure function of the study parameters: identical
parameters (re)train byte-identical policies with identical digests —
the property the CI ``policy-gate`` asserts.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.fleet.ablation import AblationResult, AblationStudy
from repro.fleet.sweep import MicroFleetSweep
from repro.policy.base import DEFAULT_PREFETCHERS, policy_from_dict
from repro.policy.features import FeatureExtractor
from repro.policy.tree import (DEFAULT_MAX_DEPTH, DEFAULT_MIN_SAMPLES_LEAF,
                               DecisionTreePolicy, train_tree)
from repro.serialization import atomic_write_text, canonical_json
from repro.units import SECOND

#: In-band disable evidence scale: a prefetcher with accuracy × coverage
#: of v is disabled on an in-band sample only when the measured
#: fractional throughput gain from ablation exceeds ``kappa * v``.
DEFAULT_KAPPA = 0.05

#: Machine-arms per single-prefetcher accuracy/coverage probe sweep.
DEFAULT_PROBE_MACHINES = 8


def default_training_config() -> LimoncelloConfig:
    """The config a default fleet deployment would use (epoch-period
    sampling, three-epoch sustain) — training features and labels see
    the same timescale the deployed controller will."""
    epoch_ns = 10 * SECOND
    return LimoncelloConfig(sample_period_ns=epoch_ns,
                            sustain_duration_ns=3 * epoch_ns)


def prefetcher_stats(prefetchers: Sequence[str], seed: int,
                     probe_machines: int = DEFAULT_PROBE_MACHINES,
                     scale: float = 0.5,
                     workers: Optional[int] = None,
                     cache_dir: Optional[str] = None,
                     checkpoint_dir: Optional[str] = None,
                     ) -> Tuple[Dict[str, Dict[str, float]], Dict]:
    """Per-prefetcher accuracy/coverage from single-prefetcher sweeps.

    Runs one :class:`MicroFleetSweep` per prefetcher with only that
    prefetcher enabled, and reduces its cycle-accurate counters:
    ``accuracy`` = useful / issued prefetch lines, ``coverage`` =
    prefetch-covered demand accesses / (covered + LLC misses). Returns
    ``(stats, provenance)`` where provenance maps each prefetcher to
    its sweep's cache-key material.
    """
    stats: Dict[str, Dict[str, float]] = {}
    provenance: Dict[str, Dict] = {}
    for name in prefetchers:
        sweep = MicroFleetSweep(mode="control", machines=probe_machines,
                                seed=seed, scale=scale,
                                prefetchers=(name,))
        result = sweep.run(workers=workers, cache_dir=cache_dir,
                           checkpoint_dir=checkpoint_dir)
        issued = result.total("hw_prefetches_issued")
        useful = result.total("useful_prefetches")
        covered = result.total("prefetch_covered")
        misses = result.total("llc_misses")
        stats[name] = {
            "accuracy": useful / issued if issued else 0.0,
            "coverage": (covered / (covered + misses)
                         if covered + misses else 0.0),
        }
        provenance[name] = sweep.cache_key_material()
    return stats, provenance


def machine_streams(result: AblationResult, shard_sizes: Sequence[int],
                    epochs: int) -> List[List[Tuple[float, float]]]:
    """Per-machine (control bandwidth-utilization, throughput-gain)
    streams in epoch order, recovered from the paired flat
    ``machine_points``.

    A shard of M machines over E epochs appends its points epoch-major
    (epoch 0 machines 0..M-1, then epoch 1, ...), and shards concatenate
    in plan order — so the flat lists decompose exactly.
    """
    control = result.control.machine_points
    experiment = result.experiment.machine_points
    if len(control) != len(experiment):
        raise ConfigError(
            f"unpaired arms: {len(control)} control vs "
            f"{len(experiment)} experiment points")
    expected = sum(shard_sizes) * epochs
    if len(control) != expected:
        raise ConfigError(
            f"{len(control)} machine points do not decompose into "
            f"{list(shard_sizes)} machines x {epochs} epochs")
    streams: List[List[Tuple[float, float]]] = []
    offset = 0
    for size in shard_sizes:
        block_control = control[offset:offset + size * epochs]
        block_experiment = experiment[offset:offset + size * epochs]
        offset += size * epochs
        for machine in range(size):
            stream = []
            for epoch in range(epochs):
                _, bw_util, ctl_qps, _ = block_control[epoch * size + machine]
                _, _, exp_qps, _ = block_experiment[epoch * size + machine]
                gain = (exp_qps / ctl_qps - 1.0) if ctl_qps > 0 else 0.0
                stream.append((bw_util, gain))
            streams.append(stream)
    return streams


def training_rows(streams: Sequence[Sequence[Tuple[float, float]]],
                  config: LimoncelloConfig,
                  stats: Dict[str, Dict[str, float]],
                  prefetchers: Sequence[str],
                  kappa: float = DEFAULT_KAPPA,
                  ) -> Tuple[List[Dict[str, float]],
                             Dict[str, List[bool]]]:
    """Feature rows plus per-prefetcher labels from paired streams.

    Features are extracted exactly as the deployed
    :class:`~repro.policy.base.PolicyController` extracts them (same
    window span, same sample period), with each prefetcher's static
    accuracy/coverage overlaid at label time.
    """
    rows: List[Dict[str, float]] = []
    labels: Dict[str, List[bool]] = {name: [] for name in prefetchers}
    upper = config.upper_threshold
    lower = config.lower_threshold
    period = config.sample_period_ns
    for stream in streams:
        extractor = FeatureExtractor(span_ns=config.sustain_duration_ns)
        for index, (utilization, gain) in enumerate(stream):
            features = extractor.observe(index * period, utilization)
            rows.append(features)
            for name in prefetchers:
                value = (stats.get(name, {}).get("accuracy", 0.0)
                         * stats.get(name, {}).get("coverage", 0.0))
                if utilization > upper:
                    enabled = False
                elif utilization < lower:
                    enabled = True
                else:
                    # In-band: disable only on throughput evidence that
                    # clears this prefetcher's value bar.
                    enabled = gain <= kappa * value
                labels[name].append(enabled)
            # The oracle label is also what the controller will actuate
            # out of band; feed it back so the duty-cycle feature evolves
            # as it will at deployment.
            extractor.note_state(not utilization > upper)
    return rows, labels


def train_decision_tree_policy(
        machines: int = 24, epochs: int = 40, warmup_epochs: int = 10,
        seed: int = 11, config: Optional[LimoncelloConfig] = None,
        prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
        probe_machines: int = DEFAULT_PROBE_MACHINES,
        probe_scale: float = 0.5, kappa: float = DEFAULT_KAPPA,
        max_depth: int = DEFAULT_MAX_DEPTH,
        min_samples_leaf: int = DEFAULT_MIN_SAMPLES_LEAF,
        shard_size: Optional[int] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        checkpoint_dir: Optional[str] = None) -> DecisionTreePolicy:
    """Train per-prefetcher trees from cached study results.

    A pure function of its parameters: the ablation and probe sweeps are
    deterministic (and cached), CART growth is row-order independent,
    and the result carries its training provenance — so retraining
    yields a byte-identical policy with an identical digest.
    """
    config = config or default_training_config()
    study_kwargs = dict(mode="off", machines=machines, epochs=epochs,
                        warmup_epochs=warmup_epochs, seed=seed)
    if shard_size is not None:
        study_kwargs["shard_size"] = shard_size
    study = AblationStudy(**study_kwargs)
    result = study.run(workers=workers, cache_dir=cache_dir,
                       checkpoint_dir=checkpoint_dir)
    stats, probe_provenance = prefetcher_stats(
        prefetchers, seed=seed, probe_machines=probe_machines,
        scale=probe_scale, workers=workers, cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir)
    streams = machine_streams(result, study.shard_plan().sizes, epochs)
    rows, labels = training_rows(streams, config, stats, prefetchers,
                                 kappa=kappa)
    trees = {}
    for name in prefetchers:
        per_prefetcher = []
        for row in rows:
            overlaid = dict(row)
            overlaid["accuracy"] = stats[name]["accuracy"]
            overlaid["coverage"] = stats[name]["coverage"]
            per_prefetcher.append(overlaid)
        trees[name] = train_tree(per_prefetcher, labels[name],
                                 max_depth=max_depth,
                                 min_samples_leaf=min_samples_leaf)
    return DecisionTreePolicy(
        trees=trees, stats=stats, prefetchers=tuple(prefetchers),
        trained_from={
            "ablation": study.cache_key_material(),
            "probes": probe_provenance,
            "kappa": kappa,
            "max_depth": max_depth,
            "min_samples_leaf": min_samples_leaf,
        })


def save_policy(policy, path: str) -> None:
    """Write a policy's canonical JSON form atomically."""
    atomic_write_text(path, canonical_json(policy.to_dict()) + "\n")


def load_policy(path: str):
    """Read a policy back from :func:`save_policy` output."""
    with open(path, encoding="utf-8") as handle:
        return policy_from_dict(json.load(handle))
