"""Pluggable prefetcher-control policies (see DESIGN.md §13).

The public surface: the :class:`Policy` protocol and its reference
implementations, the :class:`PolicyController` daemon adapter, feature
extraction, offline training, and head-to-head comparison studies.
Importing this package populates the policy registry, which is what
:func:`policy_from_dict` dispatches on.
"""

from repro.policy.bandit import (EpsilonGreedyBanditPolicy, policy_rng,
                                 policy_seed)
from repro.policy.base import (DEFAULT_PREFETCHERS, POLICY_SCHEMA_VERSION,
                               HysteresisPolicy, Policy, PolicyController,
                               SingleThresholdPolicy, policy_digest,
                               policy_from_dict, policy_from_spec,
                               register_policy)
from repro.policy.compare import (COMPARE_SCHEMA_VERSION, PolicyComparison,
                                  comparison_digest)
from repro.policy.features import (FEATURE_NAMES, FEATURE_SCHEMA_VERSION,
                                   FeatureExtractor, feature_vector)
from repro.policy.metrics import PolicyMetrics, collect_policy_metrics
from repro.policy.trainer import (load_policy, prefetcher_stats, save_policy,
                                  train_decision_tree_policy, training_rows)
from repro.policy.tree import (DecisionTreePolicy, predict_tree, train_tree,
                               tree_depth, tree_leaves)

__all__ = [
    "COMPARE_SCHEMA_VERSION",
    "DEFAULT_PREFETCHERS",
    "DecisionTreePolicy",
    "EpsilonGreedyBanditPolicy",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureExtractor",
    "HysteresisPolicy",
    "POLICY_SCHEMA_VERSION",
    "Policy",
    "PolicyComparison",
    "PolicyController",
    "PolicyMetrics",
    "SingleThresholdPolicy",
    "collect_policy_metrics",
    "comparison_digest",
    "feature_vector",
    "load_policy",
    "policy_digest",
    "policy_from_dict",
    "policy_from_spec",
    "policy_rng",
    "policy_seed",
    "predict_tree",
    "prefetcher_stats",
    "register_policy",
    "save_policy",
    "train_decision_tree_policy",
    "train_tree",
    "training_rows",
    "tree_depth",
    "tree_leaves",
]
