"""An epsilon-greedy contextual bandit learning prefetcher control online.

Pythia-style online learning, scaled down to the fleet controller's
observability: the context is the bandwidth-utilization bucket, the
arms are per-prefetcher enable/disable, and the reward is agreement
with the threshold-band oracle (computed by
:class:`~repro.policy.base.PolicyController` from the same thresholds
the hysteresis controller uses).

Determinism: exploration draws come from a private
:class:`random.Random` seeded by :func:`policy_seed` over
``(policy seed, socket ident)`` — the same BLAKE2b construction as
:func:`repro.fleet.machine.machine_seed` and the fault planner.
The stream is bound to the socket identity at deploy time, consumes
zero fleet-RNG draws, and is byte-for-byte identical at any worker
count, batch size, or hash seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.policy.base import (DEFAULT_PREFETCHERS, POLICY_SCHEMA_VERSION,
                               Policy, _coerce_prefetchers, register_policy)


def policy_seed(*parts) -> int:
    """Stable 63-bit seed for a policy RNG stream.

    BLAKE2b over a namespaced join of ``parts`` — independent of
    ``PYTHONHASHSEED``, process, and platform, and disjoint from the
    machine/fault seed namespaces.
    """
    material = ":".join(str(part) for part in parts)
    digest = hashlib.blake2b(
        f"limoncello-policy:{material}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


def policy_rng(*parts) -> random.Random:
    """A fresh RNG on the :func:`policy_seed` stream for ``parts``."""
    return random.Random(policy_seed(*parts))


@register_policy
class EpsilonGreedyBanditPolicy(Policy):
    """Per-prefetcher epsilon-greedy bandit over utilization contexts.

    Args:
        seed: Study-level exploration seed; combined with the bound
            socket ident so every socket explores independently.
        epsilon: Exploration probability per prefetcher decision.
        buckets: Utilization-context quantization (bucket width
            ``1/buckets``, clamped to ``[0, 1)``).
    """

    kind = "bandit"

    def __init__(self, seed: int = 0, epsilon: float = 0.1,
                 buckets: int = 8, prefetchers=DEFAULT_PREFETCHERS) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigError(f"epsilon must be in [0, 1], got {epsilon}")
        if buckets < 1:
            raise ConfigError(f"need at least one bucket, got {buckets}")
        self.seed = seed
        self.epsilon = epsilon
        self.buckets = buckets
        self.prefetchers = _coerce_prefetchers(prefetchers)
        self.ident = ""
        self._rng = policy_rng(self.seed, "")
        #: (reward sum, pulls) per (prefetcher, context, action).
        self._arms: Dict[Tuple[str, int, bool], Tuple[float, int]] = {}
        #: Exploration actions taken; read (as a delta) by the
        #: controller for :class:`~repro.policy.metrics.PolicyMetrics`.
        self.explorations = 0

    def bind(self, ident: str) -> None:
        """Derive this socket's private exploration stream."""
        self.ident = ident
        self._rng = policy_rng(self.seed, ident)

    def reset(self) -> None:
        """Machine restart: in-memory learned state and the exploration
        stream restart from the bound seed, like a respawned daemon."""
        self._rng = policy_rng(self.seed, self.ident)
        self._arms.clear()

    def context(self, utilization: float) -> int:
        """Quantize utilization into a context bucket."""
        clamped = min(max(utilization, 0.0), 1.0)
        return min(self.buckets - 1, int(clamped * self.buckets))

    def decide(self, time_ns: float,
               features: Dict[str, float]) -> Dict[str, bool]:
        bucket = self.context(features["utilization"])
        decisions = {}
        for name in self.prefetchers:
            if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
                self.explorations += 1
                decisions[name] = self._rng.random() < 0.5
            else:
                decisions[name] = self._greedy(name, bucket)
        return decisions

    def learn(self, features: Dict[str, float], actions: Dict[str, bool],
              rewards: Dict[str, float]) -> int:
        """Fold one decision's rewards into the arm estimates; returns
        the number of arm updates applied."""
        bucket = self.context(features["utilization"])
        updates = 0
        for name, action in actions.items():
            reward = rewards.get(name)
            if reward is None:
                continue
            key = (name, bucket, action)
            total, pulls = self._arms.get(key, (0.0, 0))
            self._arms[key] = (total + reward, pulls + 1)
            updates += 1
        return updates

    def _greedy(self, name: str, bucket: int) -> bool:
        """Best known action for (prefetcher, context); unseen or tied
        arms prefer enabled (the hardware default)."""
        on_total, on_pulls = self._arms.get((name, bucket, True), (0.0, 0))
        off_total, off_pulls = self._arms.get((name, bucket, False), (0.0, 0))
        # An unpulled arm is optimistically worth the maximum reward, so
        # each context tries both actions before settling.
        on_value = on_total / on_pulls if on_pulls else 1.0
        off_value = off_total / off_pulls if off_pulls else 1.0
        return on_value >= off_value

    def to_dict(self) -> dict:
        """Configuration only — learned arm estimates are runtime state
        and always start fresh on deployment."""
        return {
            "schema": POLICY_SCHEMA_VERSION,
            "kind": self.kind,
            "prefetchers": list(self.prefetchers),
            "seed": self.seed,
            "epsilon": self.epsilon,
            "buckets": self.buckets,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EpsilonGreedyBanditPolicy":
        return cls(seed=payload["seed"], epsilon=payload["epsilon"],
                   buckets=payload["buckets"],
                   prefetchers=payload["prefetchers"])
