"""Head-to-head policy comparison studies (``repro policy compare``).

Runs N policies over the *same* fleet, traffic, and (optional) fault
plan — each as a ``mode="hard"`` :class:`~repro.fleet.ablation.
AblationStudy` with the policy injected fleet-wide — and reduces the
per-policy :class:`~repro.policy.metrics.PolicyMetrics` and paired
fleet metrics to one plain-data report:

* ``duty_cycle_error`` — band-oracle disagreement rate (the gate
  metric: a trained tree must match or beat the hysteresis baseline);
* ``duty_cycle_disabled`` and ``transitions`` — how aggressively the
  policy toggles;
* ``throughput_gain`` and the p99 latency / mean bandwidth change vs
  the policy-free control arm;
* under a fault plan, a faulted twin reports availability and
  duty-cycle drift (robustness).

Every leg reuses the ablation machinery end-to-end — sharding, result
cache, checkpoints, obs — so the whole report is a pure function of
the comparison parameters, and :func:`comparison_digest` proves
determinism across reruns, worker counts, and batch sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.fleet.ablation import AblationStudy
from repro.policy.base import policy_digest, policy_from_spec

#: Report schema; bumped on incompatible changes.
COMPARE_SCHEMA_VERSION = 1


def comparison_digest(report: Dict) -> str:
    """A stable content hash of a comparison report."""
    import hashlib

    from repro.serialization import canonical_json

    return hashlib.sha256(canonical_json(report).encode()).hexdigest()


class PolicyComparison:
    """N policies, one fleet, one report.

    Args:
        policies: Mapping of display name → policy spec (a
            :class:`~repro.policy.base.Policy`, serialized dict, or
            canonical JSON string). Studies run in mapping order; the
            report digest is order-independent (canonical JSON).
        machines / epochs / warmup_epochs / seed / config / shard_size:
            Forwarded to every leg's :class:`AblationStudy`, so all
            policies face identical machine populations and traffic.
        fault_plan: When set, each policy additionally runs a faulted
            twin and reports robustness numbers.
    """

    def __init__(self, policies: Dict[str, object], machines: int = 12,
                 epochs: int = 40, warmup_epochs: int = 10, seed: int = 11,
                 config: Optional[LimoncelloConfig] = None,
                 shard_size: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if not policies:
            raise ConfigError("compare needs at least one policy")
        # Normalize specs up front so a bad policy fails before any
        # simulation runs.
        self.policies: List[Tuple[str, object]] = [
            (name, policy_from_spec(spec).to_dict())
            for name, spec in policies.items()]
        self.machines = machines
        self.epochs = epochs
        self.warmup_epochs = warmup_epochs
        self.seed = seed
        self.config = config
        self.shard_size = shard_size
        self.fault_plan = fault_plan

    def _study(self, spec: object,
               fault_plan: Optional[FaultPlan]) -> AblationStudy:
        kwargs = dict(mode="hard", machines=self.machines,
                      epochs=self.epochs, warmup_epochs=self.warmup_epochs,
                      seed=self.seed, config=self.config, policy=spec,
                      fault_plan=fault_plan)
        if self.shard_size is not None:
            kwargs["shard_size"] = self.shard_size
        return AblationStudy(**kwargs)

    def run(self, workers: Optional[int] = None,
            cache_dir: Optional[str] = None,
            obs_dir: Optional[str] = None,
            checkpoint_dir: Optional[str] = None,
            resume: bool = True) -> Dict:
        """Run every policy leg and build the report dict."""
        entries: Dict[str, Dict] = {}
        for name, spec in self.policies:
            study = self._study(spec, fault_plan=None)
            result = study.run(workers=workers, cache_dir=cache_dir,
                               obs_dir=obs_dir,
                               checkpoint_dir=checkpoint_dir, resume=resume)
            pm = result.policy_metrics
            if pm is None:
                raise ConfigError(
                    f"policy leg {name!r} returned no policy metrics")
            entry = {
                "kind": spec["kind"],
                "policy_digest": policy_digest(spec),
                "samples": pm.samples,
                "duty_cycle_error": pm.duty_cycle_error(),
                "duty_cycle_disabled": pm.duty_cycle_disabled(),
                "transitions": pm.transitions,
                "learn_updates": pm.learn_updates,
                "explorations": pm.explorations,
                "prefetcher_disabled": dict(pm.prefetcher_disabled),
                "throughput_gain": result.throughput_change(),
                "latency_p99_change": result.latency_reduction()["p99"],
                "bandwidth_mean_change": result.bandwidth_reduction()["mean"],
            }
            if self.fault_plan is not None:
                faulted = self._study(spec, fault_plan=self.fault_plan)
                fresult = faulted.run(workers=workers, cache_dir=cache_dir,
                                      obs_dir=obs_dir,
                                      checkpoint_dir=checkpoint_dir,
                                      resume=resume)
                fpm = fresult.policy_metrics
                chaos = fresult.chaos
                entry["faulted"] = {
                    "availability": (chaos.availability()
                                     if chaos is not None else 1.0),
                    "duty_cycle_error": (fpm.duty_cycle_error()
                                         if fpm is not None else 0.0),
                    "duty_cycle_disabled": (fpm.duty_cycle_disabled()
                                            if fpm is not None else 0.0),
                    "duty_cycle_drift": abs(
                        (fpm.duty_cycle_disabled() if fpm is not None
                         else 0.0) - pm.duty_cycle_disabled()),
                }
            entries[name] = entry

        ranking = sorted(
            entries,
            key=lambda n: (entries[n]["duty_cycle_error"],
                           -entries[n]["throughput_gain"], n))
        report = {
            "schema": COMPARE_SCHEMA_VERSION,
            "study": "policy-compare",
            "machines": self.machines,
            "epochs": self.epochs,
            "warmup_epochs": self.warmup_epochs,
            "seed": self.seed,
            "policies": entries,
            "ranking": ranking,
        }
        if self.fault_plan is not None:
            report["fault_plan"] = self.fault_plan.spec()
        return report
