"""Per-prefetcher decision trees (pure-python CART), trained offline.

Puppeteer-style control: instead of one socket-level hysteresis toggle,
each hardware prefetcher gets its own classifier mapping telemetry
features to enable/disable. Trees are grown by vanilla CART with Gini
impurity, made strictly deterministic:

* class counts (not row order) drive impurity, so shuffled training
  rows grow the identical tree;
* candidate thresholds are midpoints of consecutive *sorted unique*
  feature values;
* features are scanned in :data:`~repro.policy.features.FEATURE_NAMES`
  order and ties broken by (gain, feature order, lower threshold);
* leaves predict the majority class, ties falling back to *enabled*
  (the hardware-default state).

Trees are stored as plain nested dicts — ``{"leaf": bool}`` or
``{"feature", "threshold", "left", "right"}`` — so policy serialization
is exactly canonical JSON and the policy digest is a content hash of
the learned structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.policy.base import (DEFAULT_PREFETCHERS, POLICY_SCHEMA_VERSION,
                               Policy, _coerce_prefetchers, register_policy)
from repro.policy.features import FEATURE_NAMES, FEATURE_SCHEMA_VERSION

#: Default growth limits — small on purpose: the control signal is a
#: handful of thresholds, and small trees stay auditable.
DEFAULT_MAX_DEPTH = 4
DEFAULT_MIN_SAMPLES_LEAF = 8


def _gini(positives: int, total: int) -> float:
    """Gini impurity of a {True, False} class split, from counts only."""
    if total == 0:
        return 0.0
    p = positives / total
    return 2.0 * p * (1.0 - p)


def _majority(positives: int, total: int) -> bool:
    """Majority class; an exact tie predicts enabled (hardware default)."""
    return positives * 2 >= total


def _best_split(rows: Sequence[Dict[str, float]], labels: Sequence[bool]
                ) -> Optional[Tuple[str, float, float]]:
    """The best (feature, threshold, gain) over all candidates, or
    ``None`` when no split reduces impurity.

    Candidates are scanned in FEATURE_NAMES order, thresholds ascending,
    and a candidate replaces the incumbent only on *strictly* higher
    gain — so the winner is unique and independent of row order.
    """
    total = len(rows)
    positives = sum(labels)
    parent = _gini(positives, total)
    if parent == 0.0:
        return None
    best: Optional[Tuple[str, float, float]] = None
    for feature in FEATURE_NAMES:
        # Sort (value, label) pairs once; sweep the boundary between
        # consecutive distinct values accumulating left-side counts.
        order = sorted(zip((row[feature] for row in rows), labels))
        left_n = 0
        left_pos = 0
        for i in range(total - 1):
            value, label = order[i]
            left_n += 1
            left_pos += label
            next_value = order[i + 1][0]
            if value == next_value:
                continue
            threshold = (value + next_value) / 2.0
            right_n = total - left_n
            right_pos = positives - left_pos
            weighted = (left_n * _gini(left_pos, left_n)
                        + right_n * _gini(right_pos, right_n)) / total
            gain = parent - weighted
            if gain > 0.0 and (best is None or gain > best[2]):
                best = (feature, threshold, gain)
    return best


def train_tree(rows: Sequence[Dict[str, float]], labels: Sequence[bool],
               max_depth: int = DEFAULT_MAX_DEPTH,
               min_samples_leaf: int = DEFAULT_MIN_SAMPLES_LEAF) -> dict:
    """Grow one CART tree; returns the nested-dict node structure."""
    if len(rows) != len(labels):
        raise ConfigError(f"{len(rows)} rows vs {len(labels)} labels")
    if not rows:
        return {"leaf": True}

    def grow(indices: List[int], depth: int) -> dict:
        positives = sum(labels[i] for i in indices)
        total = len(indices)
        if depth >= max_depth or total < 2 * min_samples_leaf:
            return {"leaf": _majority(positives, total)}
        split = _best_split([rows[i] for i in indices],
                            [labels[i] for i in indices])
        if split is None:
            return {"leaf": _majority(positives, total)}
        feature, threshold, _gain = split
        left = [i for i in indices if rows[i][feature] <= threshold]
        right = [i for i in indices if rows[i][feature] > threshold]
        if len(left) < min_samples_leaf or len(right) < min_samples_leaf:
            return {"leaf": _majority(positives, total)}
        return {
            "feature": feature,
            "threshold": threshold,
            "left": grow(left, depth + 1),
            "right": grow(right, depth + 1),
        }

    return grow(list(range(len(rows))), 0)


def predict_tree(node: dict, features: Dict[str, float]) -> bool:
    """Walk a trained tree for one feature vector."""
    while "leaf" not in node:
        if features[node["feature"]] <= node["threshold"]:
            node = node["left"]
        else:
            node = node["right"]
    return bool(node["leaf"])


def tree_depth(node: dict) -> int:
    """Depth of a trained tree (a lone leaf has depth 0)."""
    if "leaf" in node:
        return 0
    return 1 + max(tree_depth(node["left"]), tree_depth(node["right"]))


def tree_leaves(node: dict) -> int:
    """Number of leaves in a trained tree."""
    if "leaf" in node:
        return 1
    return tree_leaves(node["left"]) + tree_leaves(node["right"])


@register_policy
class DecisionTreePolicy(Policy):
    """Per-prefetcher trained decision trees.

    Each prefetcher's tree sees the shared telemetry features plus that
    prefetcher's offline-measured ``accuracy``/``coverage`` (static
    features baked in at training time — the analytic fleet cannot
    observe them online, see :mod:`repro.policy.trainer`).
    """

    kind = "decision-tree"

    def __init__(self, trees: Dict[str, dict],
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 prefetchers=None,
                 trained_from: Optional[dict] = None) -> None:
        if prefetchers is None:
            prefetchers = tuple(sorted(trees)) or DEFAULT_PREFETCHERS
        self.prefetchers = _coerce_prefetchers(prefetchers)
        missing = [p for p in self.prefetchers if p not in trees]
        if missing:
            raise ConfigError(f"no tree for prefetchers: {missing}")
        self.trees = {name: trees[name] for name in self.prefetchers}
        self.stats = {name: dict((stats or {}).get(name, {}))
                      for name in self.prefetchers}
        #: Provenance of the training data (sweep/study cache keys);
        #: part of the serialized form, so retraining from different
        #: data always changes the policy digest.
        self.trained_from = trained_from

    def decide(self, time_ns: float,
               features: Dict[str, float]) -> Dict[str, bool]:
        decisions = {}
        for name in self.prefetchers:
            stats = self.stats.get(name, {})
            per_prefetcher = dict(features)
            per_prefetcher["accuracy"] = stats.get("accuracy", 0.0)
            per_prefetcher["coverage"] = stats.get("coverage", 0.0)
            decisions[name] = predict_tree(self.trees[name], per_prefetcher)
        return decisions

    def to_dict(self) -> dict:
        payload = {
            "schema": POLICY_SCHEMA_VERSION,
            "kind": self.kind,
            "feature_schema": FEATURE_SCHEMA_VERSION,
            "prefetchers": list(self.prefetchers),
            "trees": self.trees,
            "stats": self.stats,
        }
        if self.trained_from is not None:
            payload["trained_from"] = self.trained_from
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DecisionTreePolicy":
        feature_schema = payload.get("feature_schema")
        if feature_schema != FEATURE_SCHEMA_VERSION:
            raise ConfigError(
                f"policy trained under feature schema {feature_schema!r}; "
                f"this build extracts schema {FEATURE_SCHEMA_VERSION}")
        return cls(trees=payload["trees"], stats=payload.get("stats"),
                   prefetchers=payload["prefetchers"],
                   trained_from=payload.get("trained_from"))
