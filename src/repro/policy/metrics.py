"""Aggregated per-policy decision metrics for comparison studies.

A fleet running a :class:`~repro.policy.base.PolicyController` on every
socket accumulates per-sample decision statistics. :class:`PolicyMetrics`
reduces them — duty cycle, band-oracle mismatches, per-prefetcher
disable counts, online-learning activity — to the numbers ``repro
policy compare`` reports.

Like :class:`~repro.faults.metrics.ChaosMetrics`, every field is a plain
additive accumulator, so :meth:`PolicyMetrics.merge` is associative and
order-independent — merged shard metrics are bit-identical at any worker
count or batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PolicyMetrics:
    """What a policy study observed across every controller in a fleet."""

    #: Telemetry samples the policy decided on.
    samples: int = 0
    #: Samples with socket-level prefetchers disabled (all prefetchers off).
    disabled_samples: int = 0
    #: Samples where the decision disagreed with the threshold-band
    #: oracle: prefetchers on while utilization sat above the upper
    #: threshold, or off while it sat below the lower threshold.
    #: In-band samples can never mismatch.
    band_mismatches: int = 0
    #: Samples that were outside the threshold band (the denominator
    #: band_mismatches is judged against).
    band_samples: int = 0
    #: Socket-level prefetcher state flips.
    transitions: int = 0
    #: Online-learning updates applied (0 for static policies).
    learn_updates: int = 0
    #: Exploration (non-greedy) actions taken by learning policies.
    explorations: int = 0
    #: Per-prefetcher disabled-sample counts, keyed by prefetcher name.
    prefetcher_disabled: Dict[str, int] = field(default_factory=dict)

    # --- combination ----------------------------------------------------------

    def merge(self, other: "PolicyMetrics") -> "PolicyMetrics":
        """Fold another shard's policy metrics into this one (in place).

        Pure addition on every field — associative and commutative, so
        merged shard metrics are independent of merge order. Returns
        ``self`` for chaining.
        """
        self.samples += other.samples
        self.disabled_samples += other.disabled_samples
        self.band_mismatches += other.band_mismatches
        self.band_samples += other.band_samples
        self.transitions += other.transitions
        self.learn_updates += other.learn_updates
        self.explorations += other.explorations
        for name, count in other.prefetcher_disabled.items():
            self.prefetcher_disabled[name] = (
                self.prefetcher_disabled.get(name, 0) + count)
        return self

    # --- views ---------------------------------------------------------------

    def duty_cycle_disabled(self) -> float:
        """Fraction of decided samples with prefetchers disabled."""
        if self.samples == 0:
            return 0.0
        return self.disabled_samples / self.samples

    def duty_cycle_error(self) -> float:
        """Fraction of out-of-band samples where the decision disagreed
        with the threshold-band oracle (lower is better; the hysteresis
        controller errs exactly while its sustain timers run)."""
        if self.band_samples == 0:
            return 0.0
        return self.band_mismatches / self.band_samples

    def exploration_rate(self) -> float:
        """Fraction of decided samples that were exploratory."""
        if self.samples == 0:
            return 0.0
        return self.explorations / self.samples


def collect_policy_metrics(machines) -> PolicyMetrics:
    """Reduce a fleet's policy controllers to one :class:`PolicyMetrics`.

    Walks machines → daemons → controllers and folds in every controller
    exposing a ``policy_metrics`` attribute (i.e. every
    :class:`~repro.policy.base.PolicyController`). Iteration order is
    fleet order; since every field is additive the result is independent
    of that order anyway.
    """
    metrics = PolicyMetrics()
    for machine in machines:
        for daemon in getattr(machine, "daemons", []):
            controller = getattr(daemon, "controller", None)
            found = getattr(controller, "policy_metrics", None)
            if found is not None:
                metrics.merge(found)
    return metrics
