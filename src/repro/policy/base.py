"""The policy protocol, reference policies, and the daemon adapter.

A :class:`Policy` maps a telemetry feature vector to per-prefetcher
enable decisions. Policies are deliberately small, deterministic, and
JSON-serializable:

* :class:`HysteresisPolicy` — the paper's Figure 8 state machine
  (wrapping :class:`~repro.core.controller.HardLimoncelloController`)
  as the baseline; all prefetchers toggle together.
* :class:`SingleThresholdPolicy` — the no-hysteresis straw man.
* :class:`~repro.policy.tree.DecisionTreePolicy` — per-prefetcher CART
  trees trained offline (see :mod:`repro.policy.trainer`).
* :class:`~repro.policy.bandit.EpsilonGreedyBanditPolicy` — an online
  contextual bandit with seed-driven exploration.

:class:`PolicyController` adapts any policy to the controller interface
:class:`~repro.core.daemon.LimoncelloDaemon` expects (``observe`` /
``reset`` / ``prefetchers_enabled`` / ``state`` / ``decisions``), so a
policy drops into the existing fleet, chaos, and obs machinery
unchanged. Per-prefetcher decisions are reduced to the socket-level
actuation the analytic fleet models (prefetchers count as "on" unless
the policy disables *all* of them, matching the socket's MSR
semantics); the full per-prefetcher decisions are still recorded in
:class:`~repro.policy.metrics.PolicyMetrics`.

Serialization: ``policy.to_dict()`` → :func:`policy_from_dict` is a
byte-identical round trip under canonical JSON, and
:func:`policy_digest` content-hashes a policy the same way study caches
hash their results.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple, Type

from repro.core.config import LimoncelloConfig
from repro.core.controller import (ControllerState, Decision,
                                   HardLimoncelloController)
from repro.errors import ConfigError, TelemetryError
from repro.policy.features import FEATURE_SCHEMA_VERSION, FeatureExtractor
from repro.serialization import canonical_json

#: Serialized-policy schema; bumped on incompatible changes.
POLICY_SCHEMA_VERSION = 1

#: The prefetchers a policy decides over, in the platform MSR-map
#: control order (:data:`repro.msr.platform_defs.INTEL_LIKE_MAP`).
#: Fixed ordering keeps every per-prefetcher iteration — decisions,
#: metrics, serialization — deterministic.
DEFAULT_PREFETCHERS: Tuple[str, ...] = (
    "l2_stream", "l2_adjacent_line", "l1_stride", "l1_next_line")


class Policy:
    """Base class for prefetcher-control policies.

    Subclasses set :attr:`kind`, decide per-prefetcher enables from a
    feature vector, and serialize to a canonical dict. Policies must be
    deterministic given their configuration (and, for learning
    policies, their bound identity): no wall-clock, no ambient RNG.
    """

    #: Stable registry key; also the ``kind`` field of the serialized form.
    kind: str = ""

    #: The prefetchers this policy decides over, in decision order.
    prefetchers: Tuple[str, ...] = DEFAULT_PREFETCHERS

    def decide(self, time_ns: float,
               features: Dict[str, float]) -> Dict[str, bool]:
        """Per-prefetcher enable decisions for one telemetry sample."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the boot state (machine restart)."""

    def bind(self, ident: str) -> None:
        """Bind the policy to a socket identity. Stateless policies
        ignore it; learning policies derive their private RNG stream
        from it so exploration never touches fleet RNG."""

    def to_dict(self) -> dict:
        """Canonical JSON-serializable form (configuration only, not
        accumulated runtime state)."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Policy]] = {}


def register_policy(cls: Type[Policy]) -> Type[Policy]:
    """Class decorator adding a policy type to the ``kind`` registry."""
    if not cls.kind:
        raise ConfigError(f"policy class {cls.__name__} has no kind")
    _REGISTRY[cls.kind] = cls
    return cls


def policy_from_dict(payload: dict) -> Policy:
    """Rebuild a policy from its serialized form."""
    if not isinstance(payload, dict):
        raise ConfigError(f"policy payload must be a dict, got "
                          f"{type(payload).__name__}")
    schema = payload.get("schema")
    if schema != POLICY_SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported policy schema {schema!r} "
            f"(this build reads {POLICY_SCHEMA_VERSION})")
    kind = payload.get("kind")
    cls = _REGISTRY.get(kind)
    if cls is None:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigError(f"unknown policy kind {kind!r} (known: {known})")
    return cls.from_dict(payload)


def policy_from_spec(spec) -> Policy:
    """A *fresh* policy instance from a spec.

    Accepts a :class:`Policy` (cloned through serialization so shared
    specs never share mutable state), a serialized dict, or a canonical
    JSON string. Every call returns a new instance — per-socket
    controllers must not share policy state.
    """
    if isinstance(spec, Policy):
        return policy_from_dict(spec.to_dict())
    if isinstance(spec, str):
        import json
        return policy_from_dict(json.loads(spec))
    return policy_from_dict(spec)


def policy_digest(policy) -> str:
    """Content hash of a policy's canonical serialized form."""
    payload = policy.to_dict() if isinstance(policy, Policy) else policy
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _coerce_prefetchers(names) -> Tuple[str, ...]:
    names = tuple(names)
    if not names:
        raise ConfigError("a policy needs at least one prefetcher")
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate prefetcher names: {names}")
    return names


@register_policy
class HysteresisPolicy(Policy):
    """The paper's hysteresis controller as a policy (the baseline).

    Wraps a private :class:`HardLimoncelloController`; all prefetchers
    follow its single socket-level decision, so a fleet running this
    policy behaves bit-identically to the stock Hard deployment.
    """

    kind = "hysteresis"

    def __init__(self, config: Optional[LimoncelloConfig] = None,
                 prefetchers=DEFAULT_PREFETCHERS) -> None:
        self.config = config or LimoncelloConfig()
        self.prefetchers = _coerce_prefetchers(prefetchers)
        self._controller = HardLimoncelloController(self.config)

    def decide(self, time_ns: float,
               features: Dict[str, float]) -> Dict[str, bool]:
        decision = self._controller.observe(time_ns, features["utilization"])
        enabled = decision.prefetchers_enabled
        return {name: enabled for name in self.prefetchers}

    def reset(self) -> None:
        self._controller.reset()

    def to_dict(self) -> dict:
        return {
            "schema": POLICY_SCHEMA_VERSION,
            "kind": self.kind,
            "prefetchers": list(self.prefetchers),
            "lower_threshold": self.config.lower_threshold,
            "upper_threshold": self.config.upper_threshold,
            "sustain_duration_ns": self.config.sustain_duration_ns,
            "sample_period_ns": self.config.sample_period_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HysteresisPolicy":
        config = LimoncelloConfig(
            lower_threshold=payload["lower_threshold"],
            upper_threshold=payload["upper_threshold"],
            sustain_duration_ns=payload["sustain_duration_ns"],
            sample_period_ns=payload["sample_period_ns"])
        return cls(config=config, prefetchers=payload["prefetchers"])


@register_policy
class SingleThresholdPolicy(Policy):
    """One threshold, immediate flips — the no-hysteresis straw man."""

    kind = "single-threshold"

    def __init__(self, threshold: float = 0.8,
                 prefetchers=DEFAULT_PREFETCHERS) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.prefetchers = _coerce_prefetchers(prefetchers)

    def decide(self, time_ns: float,
               features: Dict[str, float]) -> Dict[str, bool]:
        enabled = features["utilization"] <= self.threshold
        return {name: enabled for name in self.prefetchers}

    def to_dict(self) -> dict:
        return {
            "schema": POLICY_SCHEMA_VERSION,
            "kind": self.kind,
            "prefetchers": list(self.prefetchers),
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SingleThresholdPolicy":
        return cls(threshold=payload["threshold"],
                   prefetchers=payload["prefetchers"])


class PolicyController:
    """Adapts a :class:`Policy` to the daemon's controller interface.

    Feeds each validated telemetry sample through the feature extractor
    and the policy, reduces per-prefetcher decisions to the socket-level
    state the actuator applies, and accumulates
    :class:`~repro.policy.metrics.PolicyMetrics` (duty cycle,
    band-oracle mismatches, per-prefetcher disables, learning
    activity). For policies exposing ``learn``, each decision is scored
    against the threshold-band oracle and fed back immediately —
    deterministic because both the features and the (seed-derived)
    exploration stream are.

    Args:
        policy: The decision policy (owned by this controller; use
            :func:`policy_from_spec` per socket, never share instances).
        config: Thresholds for the band oracle and timing for the
            feature window; defaults match the daemon's.
        tracer: Optional :class:`repro.obs.Tracer`; socket-level flips
            emit ``policy-decision`` events.
        ident: Stable ``"<machine>/<socket>"`` identity; bound into the
            policy so learning streams are per-socket. Must be set at
            construction (not tracer attach) so enabling observability
            cannot change decisions.
    """

    def __init__(self, policy: Policy,
                 config: Optional[LimoncelloConfig] = None,
                 tracer=None, ident: str = "") -> None:
        from repro.policy.metrics import PolicyMetrics
        self.policy = policy
        self.config = config or LimoncelloConfig()
        self.tracer = tracer
        self.ident = ident
        policy.bind(ident)
        self.features = FeatureExtractor(
            span_ns=self.config.sustain_duration_ns)
        self.policy_metrics = PolicyMetrics()
        self._enabled = True
        self._last_decisions: Dict[str, bool] = {
            name: True for name in policy.prefetchers}
        self._last_time: Optional[float] = None
        self.transitions = 0
        self.decisions: List[Decision] = []

    @property
    def prefetchers_enabled(self) -> bool:
        """Socket-level prefetcher state (off only when the policy has
        disabled every prefetcher)."""
        return self._enabled

    @property
    def state(self) -> ControllerState:
        """Coarse controller state for daemon bookkeeping."""
        return (ControllerState.ENABLED if self._enabled
                else ControllerState.DISABLED)

    @property
    def prefetcher_decisions(self) -> Dict[str, bool]:
        """The most recent per-prefetcher decisions."""
        return dict(self._last_decisions)

    def observe(self, time_ns: float, utilization: float) -> Decision:
        """Feed one utilization sample; returns the socket-level decision."""
        if self._last_time is not None and time_ns < self._last_time:
            raise TelemetryError(
                f"controller time moved backwards: {time_ns} < {self._last_time}")
        self._last_time = time_ns

        features = self.features.observe(time_ns, utilization)
        explored_before = getattr(self.policy, "explorations", 0)
        actions = self.policy.decide(time_ns, features)
        self.policy_metrics.explorations += (
            getattr(self.policy, "explorations", 0) - explored_before)
        enabled = any(actions.values())
        changed = enabled != self._enabled

        metrics = self.policy_metrics
        metrics.samples += 1
        if not enabled:
            metrics.disabled_samples += 1
        for name, on in actions.items():
            if not on:
                metrics.prefetcher_disabled[name] = (
                    metrics.prefetcher_disabled.get(name, 0) + 1)
        oracle = self._band_oracle(utilization)
        if oracle is not None:
            metrics.band_samples += 1
            if enabled != oracle:
                metrics.band_mismatches += 1
        if changed:
            metrics.transitions += 1
            self.transitions += 1
            if self.tracer:
                self.tracer.event("policy-decision", time_ns,
                                  ident=self.ident, policy=self.policy.kind,
                                  enabled=enabled)
        self._learn(features, actions, utilization)

        self.features.note_state(enabled)
        self._enabled = enabled
        self._last_decisions = actions
        decision = Decision(time_ns=time_ns, utilization=utilization,
                            state=self.state, changed=changed)
        self.decisions.append(decision)
        return decision

    def reset(self) -> None:
        """Return to the boot state (all prefetchers enabled, fresh
        policy and window state). Cumulative metrics and the decision
        history survive, like the daemon's report."""
        self.policy.reset()
        self.features.reset()
        self._enabled = True
        self._last_decisions = {name: True
                                for name in self.policy.prefetchers}
        self._last_time = None

    # --- internals -----------------------------------------------------------

    def _band_oracle(self, utilization: float) -> Optional[bool]:
        """The unambiguous correct socket state, or ``None`` in-band."""
        if utilization > self.config.upper_threshold:
            return False
        if utilization < self.config.lower_threshold:
            return True
        return None

    def _learn(self, features: Dict[str, float],
               actions: Dict[str, bool], utilization: float) -> None:
        learn = getattr(self.policy, "learn", None)
        if learn is None:
            return
        rewards = {}
        oracle = self._band_oracle(utilization)
        for name, on in actions.items():
            if oracle is None:
                rewards[name] = 1.0  # in-band: either action is fine
            else:
                rewards[name] = 1.0 if on == oracle else 0.0
        self.policy_metrics.learn_updates += learn(features, actions, rewards)
