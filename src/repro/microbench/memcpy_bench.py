"""The memcpy microbenchmark — Figure 15's measurement harness.

Each run executes a batch of equal-size memcpy calls (fresh, cold buffers)
through the cycle-level simulator, optionally with software prefetches
injected per a :class:`~repro.core.PrefetchDescriptor`, optionally with
hardware prefetchers enabled, and always under a configurable background
memory load (prefetch waste only costs anything when bandwidth is
contended — benchmarking "under load", Section 4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.access.address import AddressSpace
from repro.access.trace import Trace
from repro.core.soft.descriptor import PrefetchDescriptor
from repro.core.soft.injector import SoftwarePrefetchInjector
from repro.errors import ConfigError
from repro.memsys.config import HierarchyConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.prefetchers.bank import PrefetcherBank, default_prefetcher_bank
from repro.units import KB
from repro.workloads.tax import memcpy_call_trace

#: The x-axis of Figures 15a/15b: 0.25 KB to 1000 KB.
PAPER_SIZES: Tuple[int, ...] = (
    256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1000 * KB)


@dataclass(frozen=True)
class MicrobenchResult:
    """Elapsed time per memcpy size for one configuration."""

    label: str
    #: size (bytes) -> simulated ns for the whole batch at that size.
    elapsed_by_size: Dict[int, float]

    def speedup_over(self, baseline: "MicrobenchResult") -> Dict[int, float]:
        """Fractional speedup per size vs ``baseline`` (+0.10 = 10% faster)."""
        speedups = {}
        for size, elapsed in self.elapsed_by_size.items():
            base = baseline.elapsed_by_size.get(size)
            if base is None or elapsed <= 0:
                continue
            speedups[size] = base / elapsed - 1.0
        return speedups


class MemcpyMicrobenchmark:
    """Size-swept memcpy kernel under background load.

    Args:
        sizes: Copy sizes to sweep.
        bytes_per_point: Total bytes copied per size point (split into as
            many calls as fit, at least one), keeping run cost flat across
            sizes.
        background_utilization: Co-tenant bandwidth load as a fraction of
            saturation. Prefetch waste is only punished under load.
        hardware_prefetchers: Whether the hardware prefetchers run.
        seed: Buffer placement randomness (deterministic per instance).
    """

    def __init__(self, sizes: Sequence[int] = PAPER_SIZES,
                 bytes_per_point: int = 256 * KB,
                 background_utilization: float = 0.6,
                 hardware_prefetchers: bool = False,
                 config: Optional[HierarchyConfig] = None,
                 seed: int = 0) -> None:
        if not sizes or any(size <= 0 for size in sizes):
            raise ConfigError("sizes must be positive")
        if bytes_per_point <= 0:
            raise ConfigError("bytes_per_point must be positive")
        if not 0.0 <= background_utilization < 1.5:
            raise ConfigError("background utilization out of range")
        self.sizes = tuple(sizes)
        self.bytes_per_point = bytes_per_point
        self.background_utilization = background_utilization
        self.hardware_prefetchers = hardware_prefetchers
        self.config = config or HierarchyConfig()
        self.seed = seed
        # Generation is deterministic per (size, bytes_per_point, seed), so
        # every configuration of a sweep shares one base trace per size and
        # re-injects it columnar-ly; the cache holds the compiled columns.
        self._trace_cache: Dict[int, Trace] = {}
        self._baseline_result: Optional[MicrobenchResult] = None

    # --- trace construction -------------------------------------------------

    def _batch_trace(self, size: int) -> Trace:
        trace = self._trace_cache.get(size)
        if trace is None:
            calls = max(1, self.bytes_per_point // size)
            space = AddressSpace(base=AddressSpace.BASE
                                 + (self.seed % 97) * (1 << 32))
            trace = self._trace_cache[size] = memcpy_call_trace(
                space, [size] * calls)
        return trace

    def _hierarchy(self) -> MemoryHierarchy:
        background = (self.background_utilization
                      * self.config.dram.saturation_bandwidth)
        bank = (default_prefetcher_bank() if self.hardware_prefetchers
                else PrefetcherBank([]))
        return MemoryHierarchy(
            config=self.config, prefetchers=bank,
            external_load=lambda now: background)

    # --- measurement ------------------------------------------------------------

    def run(self, descriptor: Optional[PrefetchDescriptor] = None,
            label: Optional[str] = None) -> MicrobenchResult:
        """Measure the sweep for one configuration."""
        injector = (SoftwarePrefetchInjector([descriptor])
                    if descriptor is not None else None)
        elapsed: Dict[int, float] = {}
        for size in self.sizes:
            trace = self._batch_trace(size)
            if injector is not None:
                trace = injector.inject(trace)
            hierarchy = self._hierarchy()
            result = hierarchy.run(trace)
            elapsed[size] = result.elapsed_ns
        if label is None:
            label = descriptor.label() if descriptor else "baseline"
        return MicrobenchResult(label=label, elapsed_by_size=elapsed)

    def speedup(self, descriptor: PrefetchDescriptor) -> Dict[int, float]:
        """Per-size speedup of ``descriptor`` over no software prefetch.

        The baseline (no software prefetch) depends only on the bench
        configuration, so a descriptor sweep — the tuner, Figure 13's
        distance/degree grid — measures it once and reuses the result.
        """
        if self._baseline_result is None:
            self._baseline_result = self.run(None)
        return self.run(descriptor).speedup_over(self._baseline_result)

    def mean_speedup(self, descriptor: PrefetchDescriptor) -> float:
        """Average speedup across the size sweep — the tuner's objective."""
        speedups = self.speedup(descriptor)
        if not speedups:
            return 0.0
        return sum(speedups.values()) / len(speedups)

    # --- Figure 15c: the four prefetcher states --------------------------------------

    def prefetcher_state_comparison(
            self, descriptor: PrefetchDescriptor) -> Dict[str, float]:
        """Mean speedup of each (HW, SW) state relative to (+HW, -SW).

        Reproduces Figure 15c's bars: ``-HW,-SW``, ``-HW,+SW``,
        ``+HW,+SW`` (the reference ``+HW,-SW`` is 0 by construction).
        """
        def mean_elapsed(hw: bool, sw: Optional[PrefetchDescriptor]):
            """Total simulated ns across the size sweep for one state."""
            bench = MemcpyMicrobenchmark(
                sizes=self.sizes, bytes_per_point=self.bytes_per_point,
                background_utilization=self.background_utilization,
                hardware_prefetchers=hw, config=self.config, seed=self.seed)
            # The base traces are hardware-state independent: all four
            # prefetcher states replay this instance's cached columns.
            bench._trace_cache = self._trace_cache
            result = bench.run(sw)
            return sum(result.elapsed_by_size.values())

        reference = mean_elapsed(True, None)
        return {
            "-HW,-SW": reference / mean_elapsed(False, None) - 1.0,
            "-HW,+SW": reference / mean_elapsed(False, descriptor) - 1.0,
            "+HW,+SW": reference / mean_elapsed(True, descriptor) - 1.0,
        }
