"""Load tests: validating prefetch candidates on realistic mixed traffic.

"Then we select the best performing parameters for load testing to
determine performance improvements." (Section 4.2.) The load test runs
the fleet-representative mix — not an isolated kernel — through the
simulator under heavy background load, with the candidate descriptor
injected, and reports the end-to-end speedup. Microbenchmark winners that
rely on overshoot or cache pollution fail here.
"""

from __future__ import annotations

from typing import Optional

from repro.core.soft.descriptor import PrefetchDescriptor
from repro.core.soft.injector import SoftwarePrefetchInjector
from repro.errors import ConfigError
from repro.memsys.config import HierarchyConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.prefetchers.bank import PrefetcherBank
from repro.workloads.memo import memoized_fleet_mix


class FleetMixLoadTest:
    """End-to-end validation of a prefetch descriptor on mixed traffic.

    Hardware prefetchers are disabled: a Soft Limoncello candidate must
    prove itself in the regime it will actually run in (Hard Limoncello
    has turned the hardware off because bandwidth is scarce).

    Args:
        background_utilization: Co-tenant load, fraction of saturation.
        scale: Trace volume multiplier.
        seed: Workload randomness.
    """

    def __init__(self, background_utilization: float = 0.7,
                 scale: float = 1.0, seed: int = 23,
                 config: Optional[HierarchyConfig] = None) -> None:
        if not 0.0 <= background_utilization < 1.5:
            raise ConfigError("background utilization out of range")
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.background_utilization = background_utilization
        self.scale = scale
        self.seed = seed
        self.config = config or HierarchyConfig()

    def _trace(self):
        # Memoized: every descriptor evaluation replays the same mix, so
        # it is generated and compiled once per (seed, scale).
        return memoized_fleet_mix(self.seed, self.scale)

    def _run(self, descriptor: Optional[PrefetchDescriptor]) -> float:
        trace = self._trace()
        if descriptor is not None:
            trace = SoftwarePrefetchInjector([descriptor]).inject(trace)
        background = (self.background_utilization
                      * self.config.dram.saturation_bandwidth)
        hierarchy = MemoryHierarchy(
            config=self.config, prefetchers=PrefetcherBank([]),
            external_load=lambda now: background)
        return hierarchy.run(trace).elapsed_ns

    def speedup(self, descriptor: PrefetchDescriptor) -> float:
        """Fractional end-to-end speedup versus no software prefetching."""
        baseline = self._run(None)
        candidate = self._run(descriptor)
        if candidate <= 0:
            return 0.0
        return baseline / candidate - 1.0
