"""Microbenchmarks and load tests for tuning software prefetches.

The stand-ins for the LLVM-libc mem* benchmark suite and the production
load tests of Section 4.3: size-swept memcpy kernels run through the
cycle-level simulator under configurable background memory load, measuring
the speedup of candidate prefetch descriptors.
"""

from repro.microbench.memcpy_bench import (
    MemcpyMicrobenchmark,
    MicrobenchResult,
    PAPER_SIZES,
)
from repro.microbench.loadtest import FleetMixLoadTest

__all__ = [
    "MemcpyMicrobenchmark",
    "MicrobenchResult",
    "PAPER_SIZES",
    "FleetMixLoadTest",
]
