# Convenience targets for the Limoncello reproduction.

.PHONY: install lint test coverage bench bench-baselines report examples clean

install:
	pip install -e .

lint:
	ruff check src tests benchmarks examples

test:
	PYTHONPATH=src python -m pytest -x -q

coverage:
	PYTHONPATH=src python -m pytest -q \
		--cov=repro --cov-report=term-missing \
		--cov-report=xml:coverage.xml --cov-fail-under=75

bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

bench-baselines:
	PYTHONPATH=src python benchmarks/refresh_baselines.py

report:
	PYTHONPATH=src python -m repro report --out report.md

examples:
	@for script in examples/*.py; do \
		echo "==== $$script"; PYTHONPATH=src python $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
