# Convenience targets for the Limoncello reproduction.

.PHONY: install test bench report examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report --out report.md

examples:
	@for script in examples/*.py; do \
		echo "==== $$script"; python $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
