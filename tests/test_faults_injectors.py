"""Tests for the telemetry/actuation/machine fault injectors."""

import math
import random

import pytest

from repro.core import MSRPrefetcherActuator
from repro.errors import TelemetryError
from repro.faults import (
    FaultPlan,
    FaultyActuation,
    FaultyTelemetry,
    MachineChaos,
)
from repro.msr import AMD_LIKE_MAP, MSRFile
from repro.telemetry.sampler import BandwidthSample
from repro.units import SECOND


class FlatSampler:
    """A minimal inner sampler: fixed utilization, timestamp = now."""

    def __init__(self, utilization: float = 0.5):
        self.utilization = utilization
        self.calls = 0

    def sample(self, now_ns: float) -> BandwidthSample:
        self.calls += 1
        return BandwidthSample(time_ns=now_ns, bandwidth=50.0,
                               utilization=self.utilization)


class TestFaultyTelemetry:
    def test_passthrough_without_faults(self):
        inner = FlatSampler()
        faulty = FaultyTelemetry(inner, random.Random(0))
        sample = faulty.sample(3.0 * SECOND)
        assert sample.time_ns == 3.0 * SECOND
        assert sample.utilization == 0.5

    def test_drops_raise_telemetry_error(self):
        faulty = FaultyTelemetry(FlatSampler(), random.Random(1),
                                 drop_rate=0.5)
        outcomes = []
        for tick in range(40):
            try:
                faulty.sample(tick * SECOND)
                outcomes.append("ok")
            except TelemetryError:
                outcomes.append("drop")
        assert faulty.dropped > 0
        assert outcomes.count("drop") == faulty.dropped

    def test_nan_injection(self):
        faulty = FaultyTelemetry(FlatSampler(), random.Random(2),
                                 nan_rate=0.9)
        nans = sum(1 for tick in range(20)
                   if math.isnan(faulty.sample(tick * SECOND).utilization))
        assert nans == faulty.nans > 0

    def test_stale_serves_previous_sample(self):
        faulty = FaultyTelemetry(FlatSampler(), random.Random(3),
                                 stale_rate=0.9)
        first = faulty.sample(0.0)
        stale_seen = False
        for tick in range(1, 20):
            sample = faulty.sample(tick * SECOND)
            if sample.time_ns < tick * SECOND:
                stale_seen = True
        assert stale_seen
        assert faulty.stale_served > 0
        assert first.time_ns == 0.0

    def test_skew_offsets_observed_time(self):
        faulty = FaultyTelemetry(FlatSampler(), random.Random(4),
                                 skew_ns=-2.0 * SECOND)
        sample = faulty.sample(10.0 * SECOND)
        assert sample.time_ns == 8.0 * SECOND

    def test_blackout_window(self):
        faulty = FaultyTelemetry(
            FlatSampler(), random.Random(5),
            blackouts=((10.0 * SECOND, 20.0 * SECOND),))
        assert faulty.sample(9.0 * SECOND).utilization == 0.5
        with pytest.raises(TelemetryError):
            faulty.sample(10.0 * SECOND)
        with pytest.raises(TelemetryError):
            faulty.sample(19.0 * SECOND)
        assert faulty.sample(20.0 * SECOND).utilization == 0.5
        assert faulty.blackout_drops == 2

    def test_latency_spike_returns_older_reading(self):
        faulty = FaultyTelemetry(FlatSampler(), random.Random(6),
                                 latency_rate=0.9,
                                 latency_ns=3.0 * SECOND)
        delayed = False
        for tick in range(10):
            sample = faulty.sample(tick * SECOND)
            if sample.time_ns == tick * SECOND - 3.0 * SECOND:
                delayed = True
        assert delayed and faulty.delayed > 0

    def test_same_seed_same_fault_sequence(self):
        def run(seed):
            faulty = FaultyTelemetry(FlatSampler(), random.Random(seed),
                                     drop_rate=0.3, nan_rate=0.2)
            sequence = []
            for tick in range(30):
                try:
                    sample = faulty.sample(tick * SECOND)
                    sequence.append("nan" if math.isnan(sample.utilization)
                                    else "ok")
                except TelemetryError:
                    sequence.append("drop")
            return sequence

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_from_plan(self):
        plan = FaultPlan.parse(
            "telemetry-drop:rate=0.1;telemetry-latency:rate=0.2,delay=4;"
            "telemetry-skew:offset=1;telemetry-blackout:start=5,duration=2")
        faulty = FaultyTelemetry.from_plan(FlatSampler(), plan,
                                           random.Random(0))
        assert faulty._drop_rate == 0.1
        assert faulty._latency_ns == 4.0 * SECOND
        assert faulty._skew_ns == 1.0 * SECOND
        assert faulty._blackouts == ((5.0 * SECOND, 7.0 * SECOND),)


def amd_actuator():
    msrs = MSRFile()
    actuator = MSRPrefetcherActuator(msrs, AMD_LIKE_MAP)
    return msrs, actuator


class TestFaultyActuation:
    def test_transient_failures(self):
        _, actuator = amd_actuator()
        faulty = FaultyActuation(actuator, random.Random(1),
                                 transient_rate=0.5)
        results = [faulty.set_enabled(False) for _ in range(20)]
        assert faulty.transient_failures > 0
        assert results.count(False) >= faulty.transient_failures

    def test_permanent_failure_after_budget(self):
        _, actuator = amd_actuator()
        faulty = FaultyActuation(actuator, random.Random(2), fail_after=2)
        assert faulty.set_enabled(False)
        assert faulty.set_enabled(True)
        assert faulty.broken
        assert not faulty.set_enabled(False)
        assert faulty.permanent_failures == 1
        # Readback still works on a broken write path.
        assert faulty.is_enabled()

    def test_torn_write_leaves_mixed_state(self):
        msrs, actuator = amd_actuator()
        faulty = FaultyActuation(actuator, random.Random(3),
                                 partial_rate=0.999, msrs=msrs,
                                 msr_map=AMD_LIKE_MAP)
        assert not faulty.set_enabled(False)
        assert faulty.torn_writes == 1
        state = AMD_LIKE_MAP.enabled_prefetchers(msrs)
        assert any(state.values()) and not all(state.values())

    def test_partial_rate_ignored_without_registers(self):
        _, actuator = amd_actuator()
        faulty = FaultyActuation(actuator, random.Random(4),
                                 partial_rate=0.999)
        assert faulty.set_enabled(False)
        assert faulty.torn_writes == 0

    def test_from_plan(self):
        plan = FaultPlan.parse("msr-transient:rate=0.2;msr-permanent:after=5")
        _, actuator = amd_actuator()
        faulty = FaultyActuation.from_plan(actuator, plan, random.Random(0))
        assert faulty._transient_rate == 0.2
        assert faulty._fail_after == 5


class TestMachineChaos:
    def test_crash_outage_restart_cycle(self):
        plan = FaultPlan.parse("machine-crash:rate=0.2,outage=2")
        chaos = MachineChaos(plan, fleet_seed=0, machine_name="m0")
        states = [chaos.advance() for _ in range(200)]
        assert chaos.crashes > 0
        assert "restart" in states
        # Every crash is followed by exactly `outage` more down epochs,
        # then a restart epoch.
        first_down = states.index("down")
        assert states[first_down:first_down + 3] == ["down"] * 3
        assert states[first_down + 3] == "restart"
        assert chaos.down_epochs == states.count("down")

    def test_no_crash_clause_is_always_up(self):
        plan = FaultPlan.parse("telemetry-drop:rate=0.1")
        chaos = MachineChaos(plan, fleet_seed=0, machine_name="m0")
        assert [chaos.advance() for _ in range(50)] == ["up"] * 50
        assert chaos.restart_policy == "enabled"

    def test_restart_policy_from_plan(self):
        plan = FaultPlan.parse("machine-crash:rate=0.1,restart=preserved")
        chaos = MachineChaos(plan, fleet_seed=0, machine_name="m0")
        assert chaos.restart_policy == "preserved"

    def test_schedule_depends_on_machine_identity(self):
        plan = FaultPlan.parse("machine-crash:rate=0.1")
        a = MachineChaos(plan, fleet_seed=0, machine_name="m0")
        b = MachineChaos(plan, fleet_seed=0, machine_name="m1")
        assert [a.advance() for _ in range(100)] != \
            [b.advance() for _ in range(100)]

    def test_schedule_reproducible(self):
        plan = FaultPlan.parse("machine-crash:rate=0.1")
        a = MachineChaos(plan, fleet_seed=4, machine_name="m2")
        b = MachineChaos(plan, fleet_seed=4, machine_name="m2")
        assert [a.advance() for _ in range(100)] == \
            [b.advance() for _ in range(100)]
