"""Tests for the feedback-directed prefetcher gate (Section 8.1 prototype)."""

import pytest

from repro.memsys.prefetchers import NextLinePrefetcher
from repro.memsys.prefetchers.feedback import FeedbackThrottledPrefetcher

LINE = 64


def make(window=16, gate_below=0.35, ungate_above=0.65):
    inner = NextLinePrefetcher(name="nl", degree=1,
                               page_filter_entries=None)
    return FeedbackThrottledPrefetcher(inner, window=window,
                                       gate_below=gate_below,
                                       ungate_above=ungate_above)


def feed_sequential(prefetcher, start, count, pc=1):
    """Sequential misses: every next-line proposal is later demanded."""
    out = []
    for i in range(count):
        out.extend(prefetcher.observe(start + i * LINE, pc, False))
    return out


def feed_random(prefetcher, count, pc=2, seed=99):
    """Random misses over a huge region: proposals are never demanded."""
    out = []
    address = 0x5000_0000
    for i in range(count):
        address = (address + (i * 7919 + seed) * 4096) & 0xFFFF_FFC0
        out.extend(prefetcher.observe(address, pc, False))
    return out


class TestGating:
    def test_accurate_stream_stays_ungated(self):
        prefetcher = make()
        issued = feed_sequential(prefetcher, 0x1000, 200)
        assert not prefetcher.gated
        assert len(issued) > 150
        assert prefetcher.window_accuracy > 0.8

    def test_random_misses_get_gated(self):
        prefetcher = make()
        feed_random(prefetcher, 200)
        assert prefetcher.gated
        assert prefetcher.gate_events == 1
        assert prefetcher.suppressed > 0

    def test_gated_prefetcher_issues_nothing(self):
        prefetcher = make()
        feed_random(prefetcher, 200)
        issued = feed_random(prefetcher, 50, seed=123)
        assert issued == []

    def test_shadow_mode_recovers_on_phase_change(self):
        """After gating on a random phase, a streaming phase re-opens the
        gate (shadow accuracy crosses the un-gate threshold)."""
        prefetcher = make()
        feed_random(prefetcher, 200)
        assert prefetcher.gated
        issued = feed_sequential(prefetcher, 0x9_0000, 400)
        assert not prefetcher.gated
        assert prefetcher.ungate_events == 1
        assert issued, "post-recovery proposals are fetched again"

    def test_inner_counter_vs_wrapper_counter(self):
        """The wrapper's issued counter only counts fetched proposals."""
        prefetcher = make()
        feed_random(prefetcher, 300)
        assert prefetcher.issued < prefetcher.inner.issued

    def test_disabled_wrapper_is_silent(self):
        prefetcher = make()
        prefetcher.enabled = False
        assert prefetcher.observe(0x1000, 1, False) == []

    def test_reset_clears_gate(self):
        prefetcher = make()
        feed_random(prefetcher, 200)
        prefetcher.reset()
        assert not prefetcher.gated
        assert prefetcher.window_accuracy == 1.0

    def test_takes_inner_name_by_default(self):
        assert make().name == "nl"

    def test_validation(self):
        inner = NextLinePrefetcher(page_filter_entries=None)
        with pytest.raises(ValueError):
            FeedbackThrottledPrefetcher(inner, window=0)
        with pytest.raises(ValueError):
            FeedbackThrottledPrefetcher(inner, gate_below=0.7,
                                        ungate_above=0.6)
