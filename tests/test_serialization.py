"""Tests for trace and result serialization."""

import json

import pytest

from repro.access import AccessKind, MemoryAccess, Trace
from repro.access.trace import software_prefetch
from repro.errors import TraceError
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.serialization import (
    access_from_dict,
    access_to_dict,
    load_trace_jsonl,
    run_result_to_dict,
    save_run_result,
    save_trace_jsonl,
    trace_from_dicts,
    trace_to_dicts,
)
from repro.workloads import memcpy_trace


def sample_trace():
    return (memcpy_trace(0x1000, 0x9000, 512)
            + Trace([software_prefetch(0x2000, size=128, pc=3,
                                       function="memcpy"),
                     MemoryAccess(address=0x3000, size=4096,
                                  kind=AccessKind.STREAM_HINT,
                                  function="memcpy")]))


class TestAccessRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        for record in sample_trace():
            restored = access_from_dict(access_to_dict(record))
            assert restored == record

    def test_defaults_filled(self):
        record = access_from_dict({"address": 64})
        assert record.size == 8
        assert record.kind is AccessKind.LOAD
        assert record.function == ""

    def test_malformed_rejected(self):
        with pytest.raises(TraceError):
            access_from_dict({})
        with pytest.raises(TraceError):
            access_from_dict({"address": 0, "kind": "warp_drive"})
        with pytest.raises(TraceError):
            access_from_dict({"address": -5})


class TestTraceRoundTrip:
    def test_dicts_round_trip(self):
        trace = sample_trace()
        assert trace_from_dicts(trace_to_dicts(trace)) == trace

    def test_jsonl_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        assert load_trace_jsonl(path) == trace

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"address": 64}\n\n{"address": 128}\n')
        assert len(load_trace_jsonl(path)) == 2

    def test_jsonl_reports_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"address": 64}\nnot json\n')
        with pytest.raises(TraceError, match="2"):
            load_trace_jsonl(path)

    def test_replay_of_loaded_trace_matches_original(self, tmp_path):
        """A saved-and-reloaded trace simulates identically."""
        trace = memcpy_trace(0x10000, 0x90000, 8192)
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        original = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(trace)
        replayed = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(
            load_trace_jsonl(path))
        assert replayed.elapsed_ns == original.elapsed_ns
        assert replayed.total.llc_misses == original.total.llc_misses


class TestResultSerialization:
    def test_run_result_dict_contents(self):
        trace = memcpy_trace(0x10000, 0x90000, 4096)
        result = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(trace)
        data = run_result_to_dict(result)
        assert data["elapsed_ns"] == result.elapsed_ns
        assert data["total"]["llc_mpki"] == result.total.llc_mpki
        assert "memcpy" in data["functions"]
        json.dumps(data)  # JSON-safe

    def test_save_run_result(self, tmp_path):
        trace = memcpy_trace(0x10000, 0x90000, 1024)
        result = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(trace)
        path = tmp_path / "result.json"
        save_run_result(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["dram_demand_fills"] == result.dram_demand_fills


class TestFleetMetricsSerialization:
    @pytest.fixture(scope="class")
    def metrics(self):
        from repro.fleet import Fleet
        return Fleet(machines=4, seed=2).run(10)

    def test_summary_contents(self, metrics):
        from repro.serialization import fleet_metrics_to_dict
        data = fleet_metrics_to_dict(metrics)
        assert data["epochs"] == 10
        assert data["bandwidth"]["mean"] == pytest.approx(
            metrics.bandwidth_summary().mean)
        assert data["normalized_throughput"] == pytest.approx(
            metrics.normalized_throughput)
        assert "samples" not in data
        json.dumps(data)

    def test_samples_optional(self, metrics):
        from repro.serialization import fleet_metrics_to_dict
        data = fleet_metrics_to_dict(metrics, include_samples=True)
        assert (len(data["samples"]["socket_bandwidth"])
                == len(metrics.socket_bandwidth))

    def test_save_fleet_metrics(self, metrics, tmp_path):
        from repro.serialization import save_fleet_metrics
        path = tmp_path / "metrics.json"
        save_fleet_metrics(metrics, path)
        loaded = json.loads(path.read_text())
        assert loaded["epochs"] == 10

    def test_round_trip_is_lossless(self, metrics):
        from repro.serialization import (fleet_metrics_from_dict,
                                         fleet_metrics_to_dict)
        data = fleet_metrics_to_dict(metrics, include_samples=True)
        restored = fleet_metrics_from_dict(json.loads(json.dumps(data)))
        assert restored.socket_bandwidth == metrics.socket_bandwidth
        assert restored.machine_points == metrics.machine_points
        assert restored.total_qps == metrics.total_qps
        assert (fleet_metrics_to_dict(restored, include_samples=True)
                == data)

    def test_summary_only_dict_rejected(self, metrics):
        from repro.serialization import (fleet_metrics_from_dict,
                                         fleet_metrics_to_dict)
        with pytest.raises(TraceError):
            fleet_metrics_from_dict(fleet_metrics_to_dict(metrics))


class TestStudyResultSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.fleet import AblationStudy
        return AblationStudy(mode="off", machines=4, epochs=8,
                             warmup_epochs=2, seed=3).run()

    def test_function_stats_round_trip(self, result):
        from repro.serialization import (function_stats_from_dict,
                                         function_stats_to_dict)
        for name, stats in result.control_profile:
            restored = function_stats_from_dict(
                function_stats_to_dict(stats))
            assert restored == stats, name

    def test_profile_round_trip(self, result):
        from repro.serialization import (profile_data_from_dict,
                                         profile_data_to_dict)
        data = json.loads(json.dumps(
            profile_data_to_dict(result.control_profile)))
        restored = profile_data_from_dict(data)
        assert restored.samples == result.control_profile.samples
        assert restored.as_mapping() == result.control_profile.as_mapping()

    def test_ablation_result_round_trip(self, result):
        from repro.serialization import (ablation_result_from_dict,
                                         ablation_result_to_dict)
        data = json.loads(json.dumps(ablation_result_to_dict(result)))
        restored = ablation_result_from_dict(data)
        assert restored.mode == result.mode
        assert (restored.bandwidth_reduction()
                == result.bandwidth_reduction())
        assert (restored.function_cycle_deltas()
                == result.function_cycle_deltas())
        assert ablation_result_to_dict(restored) == data

    def test_malformed_records_rejected(self):
        from repro.serialization import (ablation_result_from_dict,
                                         profile_data_from_dict)
        with pytest.raises(TraceError):
            profile_data_from_dict({"functions": "nope"})
        with pytest.raises(TraceError):
            ablation_result_from_dict({"mode": "off"})


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        from repro.serialization import atomic_write_text
        target = tmp_path / "out.json"
        assert atomic_write_text(target, '{"a": 1}') == target
        assert target.read_text() == '{"a": 1}'

    def test_replaces_existing_content(self, tmp_path):
        from repro.serialization import atomic_write_text
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        from repro.serialization import atomic_write_text
        atomic_write_text(tmp_path / "out.json", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_write_preserves_previous_content(self, tmp_path):
        """The atomicity promise: a reader never sees a torn file."""
        from repro.serialization import atomic_write_text

        target = tmp_path / "out.json"
        atomic_write_text(target, "intact")
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # not a str: write fails
        assert target.read_text() == "intact"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestRolloutResultRoundTrip:
    def test_round_trip_is_lossless(self):
        from repro.fleet import RolloutStudy
        from repro.serialization import (rollout_result_from_dict,
                                         rollout_result_to_dict)
        result = RolloutStudy(machines=4, epochs=8, warmup_epochs=2,
                              seed=5).run()
        data = rollout_result_to_dict(result)
        restored = rollout_result_from_dict(data)
        assert rollout_result_to_dict(restored) == data

    def test_malformed_dict_rejected(self):
        from repro.serialization import rollout_result_from_dict
        with pytest.raises((TraceError, KeyError, TypeError)):
            rollout_result_from_dict({"not": "a rollout result"})
