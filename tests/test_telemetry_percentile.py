"""Tests for repro.telemetry.percentile."""

import math

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    PercentileSummary,
    format_relative_change,
    percentile,
)


class TestPercentile:
    def test_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 25, 50, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(TelemetryError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestPercentileSummary:
    def test_of(self):
        values = list(map(float, range(1, 101)))
        summary = PercentileSummary.of(values)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(np.percentile(values, 50))
        assert summary.p99 == pytest.approx(np.percentile(values, 99))
        assert summary.peak == 100.0

    def test_of_empty_raises(self):
        with pytest.raises(TelemetryError):
            PercentileSummary.of([])

    def test_relative_change(self):
        baseline = PercentileSummary.of([100.0] * 10)
        lower = PercentileSummary.of([85.0] * 10)
        change = lower.relative_change(baseline)
        assert change["mean"] == pytest.approx(-0.15)
        assert change["p99"] == pytest.approx(-0.15)

    def test_relative_change_zero_baseline_is_infinite(self):
        # A statistic appearing where the baseline had none is an
        # unbounded change, not "no change" (the old, masking behaviour).
        baseline = PercentileSummary.of([0.0])
        other = PercentileSummary.of([1.0])
        assert other.relative_change(baseline)["mean"] == float("inf")

    def test_relative_change_zero_baseline_negative_value(self):
        baseline = PercentileSummary.of([0.0])
        other = PercentileSummary.of([-1.0])
        assert other.relative_change(baseline)["mean"] == float("-inf")

    def test_relative_change_zero_to_zero_is_zero(self):
        baseline = PercentileSummary.of([0.0])
        other = PercentileSummary.of([0.0])
        change = other.relative_change(baseline)
        assert all(value == 0.0 for value in change.values())


class TestFormatRelativeChange:
    def test_finite(self):
        assert format_relative_change(-0.153) == "-15.3%"
        assert format_relative_change(0.25) == "+25.0%"
        assert format_relative_change(0.0) == "+0.0%"

    def test_precision(self):
        assert format_relative_change(-0.1534, precision=2) == "-15.34%"

    def test_infinite(self):
        assert format_relative_change(float("inf")) == "+inf"
        assert format_relative_change(float("-inf")) == "-inf"


class TestNaNHandling:
    def test_format_nan_renders_bare_nan(self):
        # format(nan, '+.1%') yields the pseudo-signed "+nan%"; the
        # renderer must emit a bare "nan" instead.
        assert format_relative_change(float("nan")) == "nan"

    def test_nan_statistic_against_zero_baseline_is_nan(self):
        # Regression: nan > 0.0 is False, so a NaN statistic over a zero
        # baseline used to fall through to the -inf branch.
        baseline = PercentileSummary.of([0.0])
        other = PercentileSummary(count=1, mean=float("nan"),
                                  p50=float("nan"), p90=float("nan"),
                                  p99=float("nan"), peak=float("nan"))
        change = other.relative_change(baseline)
        assert all(math.isnan(value) for value in change.values())

    def test_nan_baseline_is_nan(self):
        baseline = PercentileSummary(count=1, mean=float("nan"),
                                     p50=float("nan"), p90=float("nan"),
                                     p99=float("nan"), peak=float("nan"))
        other = PercentileSummary.of([3.0])
        change = other.relative_change(baseline)
        assert all(math.isnan(value) for value in change.values())

    def test_nan_never_reported_as_infinite(self):
        baseline = PercentileSummary.of([0.0])
        other = PercentileSummary(count=1, mean=float("nan"), p50=0.0,
                                  p90=0.0, p99=0.0, peak=0.0)
        change = other.relative_change(baseline)
        assert math.isnan(change["mean"])
        assert change["p50"] == 0.0
