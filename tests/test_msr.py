"""Tests for the simulated MSR layer (repro.msr)."""

import random

import pytest

from repro.errors import ConfigError, MSRAccessError, UnknownRegisterError
from repro.msr import (
    AMD_LIKE_MAP,
    FaultyMSRFile,
    INTEL_LIKE_MAP,
    MSRFile,
    PlatformMSRMap,
    PrefetcherControl,
    msr_map_for_vendor,
)


class TestMSRFile:
    def test_declare_read_write(self):
        msrs = MSRFile()
        msrs.declare(0x1A4, reset_value=0)
        assert msrs.rdmsr(0x1A4) == 0
        msrs.wrmsr(0x1A4, 0xF)
        assert msrs.rdmsr(0x1A4) == 0xF

    def test_undeclared_read_raises(self):
        with pytest.raises(UnknownRegisterError):
            MSRFile().rdmsr(0x1A4)

    def test_undeclared_write_raises(self):
        with pytest.raises(UnknownRegisterError):
            MSRFile().wrmsr(0x1A4, 1)

    def test_out_of_range_value(self):
        msrs = MSRFile()
        msrs.declare(0x1A4)
        with pytest.raises(ValueError):
            msrs.wrmsr(0x1A4, 1 << 64)

    def test_set_and_clear_bits(self):
        msrs = MSRFile()
        msrs.declare(0x1A4, reset_value=0b1000)
        msrs.set_bits(0x1A4, 0b0011)
        assert msrs.rdmsr(0x1A4) == 0b1011
        msrs.clear_bits(0x1A4, 0b1001)
        assert msrs.rdmsr(0x1A4) == 0b0010

    def test_observers_called_on_write(self):
        msrs = MSRFile()
        msrs.declare(0x1A4)
        seen = []
        msrs.subscribe(lambda addr, value: seen.append((addr, value)))
        msrs.wrmsr(0x1A4, 5)
        assert seen == [(0x1A4, 5)]

    def test_counters(self):
        msrs = MSRFile()
        msrs.declare(0x1A4)
        msrs.rdmsr(0x1A4)
        msrs.wrmsr(0x1A4, 1)
        assert msrs.read_count == 1
        assert msrs.write_count == 1


class TestFaultyMSRFile:
    def test_failures_raise_and_preserve_value(self):
        msrs = FaultyMSRFile(failure_rate=0.5, rng=random.Random(7))
        msrs.declare(0x1A4, reset_value=0)
        failures = 0
        for _ in range(100):
            try:
                msrs.wrmsr(0x1A4, 0xF)
            except MSRAccessError:
                failures += 1
        assert failures > 10
        assert msrs.failed_writes == failures
        # Value was eventually written by a successful attempt.
        assert msrs.rdmsr(0x1A4) == 0xF

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            FaultyMSRFile(failure_rate=1.0)


class TestPlatformMaps:
    @pytest.mark.parametrize("msr_map", [INTEL_LIKE_MAP, AMD_LIKE_MAP])
    def test_disable_enable_all(self, msr_map):
        msrs = MSRFile()
        msr_map.declare_registers(msrs)
        assert msr_map.all_enabled(msrs)
        msr_map.disable_all(msrs)
        assert msr_map.all_disabled(msrs)
        msr_map.enable_all(msrs)
        assert msr_map.all_enabled(msrs)

    def test_disable_one(self):
        msrs = MSRFile()
        INTEL_LIKE_MAP.declare_registers(msrs)
        INTEL_LIKE_MAP.disable_one(msrs, "l2_stream")
        state = INTEL_LIKE_MAP.enabled_prefetchers(msrs)
        assert state["l2_stream"] is False
        assert state["l1_stride"] is True
        INTEL_LIKE_MAP.enable_one(msrs, "l2_stream")
        assert INTEL_LIKE_MAP.all_enabled(msrs)

    def test_vendor_layouts_differ(self):
        assert INTEL_LIKE_MAP.registers != AMD_LIKE_MAP.registers
        assert len(AMD_LIKE_MAP.registers) == 2

    def test_unknown_control_name(self):
        with pytest.raises(ConfigError):
            INTEL_LIKE_MAP.control("nope")

    def test_vendor_lookup(self):
        assert msr_map_for_vendor("intel-like") is INTEL_LIKE_MAP
        assert msr_map_for_vendor("amd-like") is AMD_LIKE_MAP
        with pytest.raises(ConfigError):
            msr_map_for_vendor("sparc")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            PlatformMSRMap("x", (
                PrefetcherControl("a", 0x1, 0),
                PrefetcherControl("a", 0x1, 1),
            ))

    def test_empty_map_rejected(self):
        with pytest.raises(ConfigError):
            PlatformMSRMap("x", ())

    def test_disable_does_not_disturb_other_bits(self):
        msrs = MSRFile()
        msrs.declare(0x1A4, reset_value=1 << 40)
        INTEL_LIKE_MAP.disable_all(msrs)
        assert msrs.rdmsr(0x1A4) & (1 << 40)
        INTEL_LIKE_MAP.enable_all(msrs)
        assert msrs.rdmsr(0x1A4) == 1 << 40
