"""Golden-equivalence tests: the columnar trace builder vs the record path.

Every workload generator now emits through
:func:`repro.access.builder.trace_builder`. With ``REPRO_SLOW_BUILDER=1``
that factory returns the record-path oracle (per-record ``MemoryAccess``
construction plus the validating ``Trace`` constructor — the old
pipeline); by default it returns the columnar :class:`TraceBuilder`. The
two must be **bit-identical**: same records, same compiled columns
(including function-interning order), same simulator results, for every
roster function, the fleetbench mix, and hypothesis-generated append
sequences.
"""

import random

import pytest
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.access import (
    AccessKind,
    AddressSpace,
    MemoryAccess,
    RecordTraceBuilder,
    SLOW_BUILDER_ENV,
    Trace,
    TraceBuilder,
    interleave,
    trace_builder,
)
from repro.errors import TraceError
from repro.memsys import MemoryHierarchy
from repro.workloads.functions import FUNCTION_ROSTER
from repro.workloads.mixes import fleetbench_trace

from tests.test_engine_equivalence import snapshot


def assert_bit_identical(columnar: Trace, record: Trace) -> None:
    """Records, compiled columns, and interning must all match."""
    fast, slow = columnar.compile(), Trace(list(record)).compile()
    assert fast.functions == slow.functions
    assert fast.packed == slow.packed
    assert fast.kinds == slow.kinds
    assert fast.lines == slow.lines
    assert fast.extras == slow.extras
    assert fast.pcs == slow.pcs
    assert fast.gaps == slow.gaps
    assert fast.fids == slow.fids
    assert fast.addrs == slow.addrs
    assert fast.sizes == slow.sizes
    assert list(columnar) == list(record)
    assert columnar == record


def generate_twice(monkeypatch, generate):
    """Run ``generate`` on the columnar backend, then on the oracle."""
    monkeypatch.delenv(SLOW_BUILDER_ENV, raising=False)
    columnar = generate()
    monkeypatch.setenv(SLOW_BUILDER_ENV, "1")
    record = generate()
    monkeypatch.delenv(SLOW_BUILDER_ENV, raising=False)
    return columnar, record


class TestGeneratorEquivalence:
    @pytest.mark.parametrize("name", sorted(FUNCTION_ROSTER))
    def test_roster_function_bit_identical(self, monkeypatch, name):
        profile = FUNCTION_ROSTER[name]
        columnar, record = generate_twice(
            monkeypatch,
            lambda: profile.trace(random.Random(7), AddressSpace(),
                                  scale=0.05))
        assert_bit_identical(columnar, record)

    def test_fleetbench_mix_bit_identical(self, monkeypatch):
        columnar, record = generate_twice(
            monkeypatch,
            lambda: fleetbench_trace(random.Random(11), AddressSpace(),
                                     scale=0.05))
        assert_bit_identical(columnar, record)

    def test_fleetbench_mix_simulator_results_identical(self, monkeypatch):
        columnar, record = generate_twice(
            monkeypatch,
            lambda: fleetbench_trace(random.Random(3), AddressSpace(),
                                     scale=0.05))
        h_fast = MemoryHierarchy()
        r_fast = h_fast.run(columnar)
        h_slow = MemoryHierarchy()
        r_slow = h_slow.run(record)
        assert snapshot(h_fast, r_fast) == snapshot(h_slow, r_slow)

    def test_roster_function_simulator_results_identical(self, monkeypatch):
        for name in ("memcpy", "serialize", "pointer_chase"):
            profile = FUNCTION_ROSTER[name]
            columnar, record = generate_twice(
                monkeypatch,
                lambda: profile.trace(random.Random(5), AddressSpace(),
                                      scale=0.05))
            h_fast = MemoryHierarchy()
            r_fast = h_fast.run(columnar)
            h_slow = MemoryHierarchy()
            r_slow = h_slow.run(record)
            assert snapshot(h_fast, r_fast) == snapshot(h_slow, r_slow)


class TestBuilderDispatch:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv(SLOW_BUILDER_ENV, raising=False)
        assert isinstance(trace_builder(), TraceBuilder)

    def test_env_forces_record_path(self, monkeypatch):
        monkeypatch.setenv(SLOW_BUILDER_ENV, "1")
        assert isinstance(trace_builder(), RecordTraceBuilder)

    def test_env_off_values_stay_columnar(self, monkeypatch):
        for value in ("0", "false", "off", ""):
            monkeypatch.setenv(SLOW_BUILDER_ENV, value)
            assert isinstance(trace_builder(), TraceBuilder)


class TestBuilderValidation:
    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_negative_address_rejected(self, backend):
        with pytest.raises(ValueError, match="address"):
            backend().append(-1)

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_non_positive_size_rejected(self, backend):
        with pytest.raises(ValueError, match="size"):
            backend().append(0, size=0)

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_negative_gap_rejected(self, backend):
        with pytest.raises(ValueError, match="gap_cycles"):
            backend().append(0, gap_cycles=-1)

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_stream_negative_count_rejected(self, backend):
        with pytest.raises(ValueError, match="count"):
            backend().append_stream(0, -1)

    def test_stream_negative_address_rejected(self):
        # A descending stream that walks below zero must fail like the
        # record path (which fails on the offending MemoryAccess).
        with pytest.raises(ValueError, match="address"):
            TraceBuilder().append_stream(128, 4, step=-64)
        with pytest.raises(ValueError, match="address"):
            RecordTraceBuilder().append_stream(128, 4, step=-64)

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_copy_negative_count_rejected(self, backend):
        with pytest.raises(ValueError, match="count"):
            backend().append_copy(0, 4096, -1)

    def test_copy_negative_address_rejected(self):
        # A backward copy that walks below zero fails on either backend.
        with pytest.raises(ValueError, match="address"):
            TraceBuilder().append_copy(128, 4096, 4, step=-64)
        with pytest.raises(ValueError, match="address"):
            RecordTraceBuilder().append_copy(128, 4096, 4, step=-64)

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_round_robin_ragged_streams_rejected(self, backend):
        with pytest.raises(ValueError, match="length"):
            backend().append_round_robin(
                [([0, 64], 8, AccessKind.LOAD, 0, 0),
                 ([0], 8, AccessKind.LOAD, 0, 0)])

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_round_robin_negative_address_rejected(self, backend):
        with pytest.raises(ValueError, match="address"):
            backend().append_round_robin(
                [([64, -64], 8, AccessKind.LOAD, 0, 0)])

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_append_after_build_rejected(self, backend):
        builder = backend()
        builder.append(0)
        builder.build()
        with pytest.raises(TraceError, match="already built"):
            builder.append(1)

    @pytest.mark.parametrize("backend", [TraceBuilder, RecordTraceBuilder])
    def test_build_twice_rejected(self, backend):
        builder = backend()
        builder.build()
        with pytest.raises(TraceError):
            builder.build()


def build_sample(builder):
    builder.append(0x1000, size=64, pc=1, function="f", gap_cycles=2)
    builder.append_stream(0x2000, 6, kind=AccessKind.STORE, pc=2,
                          function="g")
    builder.append_addresses([0x37, 0x4040, 0x50f0], size=16, pc=3,
                             function="f")
    builder.append(0x7ffc, size=130, pc=4)  # crosses three lines
    builder.append_copy(0x9000, 0xa040, 3, load_pc=5, store_pc=6,
                        function="g", gap_cycles=1, first_gap_cycles=9)
    builder.append_round_robin(
        [([0xb000, 0xb100], 8, AccessKind.LOAD, 7, 1),
         ([0xc020, 0xc0a0], 32, AccessKind.STORE, 8, 0)], function="h")
    return builder.build()


class TestLazyTrace:
    def test_sequence_api_matches_record_backed(self):
        lazy = build_sample(TraceBuilder())
        eager = build_sample(RecordTraceBuilder())
        assert len(lazy) == len(eager)
        assert list(lazy) == list(eager)
        assert lazy[0] == eager[0]
        assert lazy[-1] == eager[-1]
        assert list(lazy[2:5]) == list(eager[2:5])
        assert isinstance(lazy[2:5], Trace)

    def test_compile_is_zero_cost_and_lazy(self):
        trace = build_sample(TraceBuilder())
        assert trace._records is None
        assert trace.compile() is trace.compile()
        assert trace._records is None  # compiling never materializes

    def test_statistics_match_record_backed(self):
        lazy = build_sample(TraceBuilder())
        eager = build_sample(RecordTraceBuilder())
        assert lazy.demand_count == eager.demand_count
        assert lazy.prefetch_count == eager.prefetch_count
        assert lazy.compute_cycles == eager.compute_cycles
        assert lazy.instruction_count == eager.instruction_count
        assert lazy.unique_lines() == eager.unique_lines()
        assert lazy.footprint_bytes() == eager.footprint_bytes()
        assert lazy.functions() == eager.functions()

    def test_columnar_eq_fast_path(self):
        first = build_sample(TraceBuilder())
        second = build_sample(TraceBuilder())
        assert first == second
        assert first._records is None and second._records is None

    def test_columnar_concat_matches_record_concat(self):
        a, b = build_sample(TraceBuilder()), build_sample(TraceBuilder())
        combined = a + b
        assert combined._records is None
        reference = Trace(list(a) + list(b))
        assert_bit_identical(combined, reference)

    def test_concat_reinterns_new_functions(self):
        first = TraceBuilder()
        first.append(0, function="a")
        second = TraceBuilder()
        second.append(64, function="b")
        second.append(128, function="a")
        combined = first.build() + second.build()
        reference = Trace([
            MemoryAccess(address=0, function="a"),
            MemoryAccess(address=64, function="b"),
            MemoryAccess(address=128, function="a"),
        ])
        assert_bit_identical(combined, reference)

    def test_empty_plus_columnar_stays_columnar(self):
        combined = Trace() + build_sample(TraceBuilder())
        assert combined._records is None
        assert list(combined) == list(build_sample(RecordTraceBuilder()))

    def test_mixed_concat_materializes_neither_side(self):
        lazy = build_sample(TraceBuilder())
        eager = build_sample(RecordTraceBuilder())
        combined = lazy + eager
        assert lazy._records is None
        assert list(combined) == list(eager) + list(eager)


class TestColumnarInterleave:
    def make_inputs(self, backend):
        first = backend()
        first.append_stream(0, 40, function="a", gap_cycles=1)
        first.append_stream(1 << 20, 7, function="c")
        second = backend()
        second.append_stream(1 << 16, 25, kind=AccessKind.STORE,
                             function="b")
        third = backend()
        third.append_addresses([i * 4096 for i in range(13)], function="a")
        return [first.build(), second.build(), third.build()]

    @pytest.mark.parametrize("chunk", [1, 5, 64])
    def test_matches_record_path(self, chunk):
        columnar = interleave(self.make_inputs(TraceBuilder), chunk=chunk)
        record = interleave(self.make_inputs(RecordTraceBuilder),
                            chunk=chunk)
        assert columnar._records is None
        assert_bit_identical(columnar, record)

    @pytest.mark.parametrize("limit", [1, 17, 50, 200])
    def test_limit_matches_record_path(self, limit):
        columnar = interleave(self.make_inputs(TraceBuilder), chunk=9,
                              limit=limit)
        record = interleave(self.make_inputs(RecordTraceBuilder), chunk=9,
                            limit=limit)
        assert_bit_identical(columnar, record)

    def test_mixed_backing_takes_record_path(self):
        inputs = [build_sample(TraceBuilder()),
                  build_sample(RecordTraceBuilder())]
        merged = interleave(inputs, chunk=3)
        reference = interleave([Trace(list(t)) for t in inputs], chunk=3)
        assert list(merged) == list(reference)


_OP = st.one_of(
    st.tuples(
        st.just("append"),
        st.integers(min_value=0, max_value=1 << 24),
        st.integers(min_value=1, max_value=512),
        st.sampled_from(tuple(AccessKind)),
        st.integers(min_value=0, max_value=9),
        st.sampled_from(("", "alpha", "beta", "gamma")),
        st.integers(min_value=0, max_value=30),
    ),
    st.tuples(
        st.just("stream"),
        st.integers(min_value=0, max_value=1 << 24),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=256),
        st.integers(min_value=1, max_value=256),
        st.sampled_from(("", "alpha", "delta")),
    ),
    st.tuples(
        st.just("addresses"),
        st.lists(st.integers(min_value=0, max_value=1 << 24), max_size=30),
        st.integers(min_value=1, max_value=128),
        st.sampled_from(("alpha", "epsilon")),
    ),
    st.tuples(
        st.just("copy"),
        st.integers(min_value=0, max_value=1 << 24),
        st.integers(min_value=0, max_value=1 << 24),
        st.integers(min_value=0, max_value=24),
        st.sampled_from((64, 128, 8, 96)),
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=-1, max_value=40),
        st.sampled_from(("", "zeta")),
    ),
    st.tuples(
        st.just("round_robin"),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=200),
                st.sampled_from(tuple(AccessKind)),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=4),
        st.integers(min_value=0, max_value=20),
        st.sampled_from(("alpha", "eta")),
    ),
)


def apply_ops(builder, ops):
    for op in ops:
        if op[0] == "append":
            _, address, size, kind, pc, function, gap = op
            builder.append(address, size=size, kind=kind, pc=pc,
                           function=function, gap_cycles=gap)
        elif op[0] == "stream":
            _, base, count, step, size, function = op
            builder.append_stream(base, count, step=step, size=size,
                                  function=function)
        elif op[0] == "addresses":
            _, addresses, size, function = op
            builder.append_addresses(addresses, size=size, function=function)
        elif op[0] == "copy":
            _, src, dst, count, step, size, first_gap, function = op
            builder.append_copy(src, dst, count, step=step, size=size,
                                load_pc=5, store_pc=6, function=function,
                                gap_cycles=2, first_gap_cycles=first_gap)
        else:
            _, specs, length, function = op
            # Deterministic per-stream addresses so both backends see the
            # same input without sharing list objects.
            builder.append_round_robin(
                [([(position * 977 + index * 64) % (1 << 20)
                   for index in range(length)], size, kind, pc, gap)
                 for position, (size, kind, pc, gap) in enumerate(specs)],
                function=function)
    return builder.build()


class TestPropertyEquivalence:
    @given(ops=st.lists(_OP, max_size=25))
    @settings(max_examples=scaled(80), deadline=None)
    def test_random_append_sequences(self, ops):
        columnar = apply_ops(TraceBuilder(), ops)
        record = apply_ops(RecordTraceBuilder(), ops)
        assert_bit_identical(columnar, record)
