"""The micro-fleet sweep study and its batching plumbing.

Covers the determinism contract (serial == sharded == any batch size,
proven by digest), the result cache (batch size and worker count are
excluded from the key), chaos arms inside batches, the fault-plan
bridge, and the :func:`plan_batches` / :func:`resolve_batch_size`
edge cases the study layer leans on.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.fleet import (
    DEFAULT_BATCH_SIZE,
    MicroFleetSweep,
    MicroSweepResult,
    plan_batches,
    resolve_batch_size,
    sweep_digest,
)
from repro.fleet.ablation import AblationStudy
from repro.fleet.parallel import BATCH_ENV_VAR
from repro.fleet.rollout import RolloutStudy
from repro.fleet.sweep import background_load, crashed

SCALE = 0.05  # tiny shared traces keep each sweep run fast


def small_sweep(**overrides):
    kwargs = dict(mode="off", machines=9, seed=3, scale=SCALE,
                  shard_size=4, batch_size=3)
    kwargs.update(overrides)
    return MicroFleetSweep(**kwargs)


class TestDeterminism:
    def test_serial_equals_sharded(self):
        serial = small_sweep().run(workers=1)
        sharded = small_sweep().run(workers=2)
        assert sweep_digest(serial) == sweep_digest(sharded)

    def test_batched_equals_scalar(self):
        """The whole point: REPRO_BATCH can never change a digest."""
        batched = small_sweep(batch_size=3).run(workers=1)
        scalar = small_sweep(batch_size=0).run(workers=1)
        single = small_sweep(batch_size=1).run(workers=1)
        assert sweep_digest(batched) == sweep_digest(scalar)
        assert sweep_digest(single) == sweep_digest(scalar)

    def test_modes_differ(self):
        off = small_sweep(mode="off").run(workers=1)
        control = small_sweep(mode="control").run(workers=1)
        assert sweep_digest(off) != sweep_digest(control)

    def test_rows_are_plan_ordered(self):
        result = small_sweep().run(workers=1)
        assert [arm["machine"] for arm in result.arms] == (
            [f"s0/m{i}" for i in range(3)]
            + [f"s1/m{i}" for i in range(3)]
            + [f"s2/m{i}" for i in range(3)])


class TestChaosArms:
    def test_crash_rate_downs_deterministic_arms(self):
        first = small_sweep(crash_rate=0.4).run(workers=1)
        second = small_sweep(crash_rate=0.4).run(workers=1)
        assert sweep_digest(first) == sweep_digest(second)
        assert 0 < first.down < first.machines
        downed = [arm for arm in first.arms if arm["down"]]
        assert len(downed) == first.down
        for arm in downed:  # down rows present but zeroed
            assert arm["elapsed_ns"] == 0.0
            assert arm["llc_misses"] == 0

    def test_chaos_arms_inside_batches_keep_digest(self):
        """Crashing arms out of a shard reshapes the surviving batch
        geometry; results must not notice."""
        batched = small_sweep(crash_rate=0.4, batch_size=4).run(workers=1)
        scalar = small_sweep(crash_rate=0.4, batch_size=0).run(workers=1)
        assert sweep_digest(batched) == sweep_digest(scalar)

    def test_crash_rate_from_fault_plan(self):
        plan = FaultPlan.parse("seed=2;machine-crash:rate=0.5")
        assert small_sweep(fault_plan=plan).crash_rate == 0.5

    def test_explicit_crash_rate_wins_over_plan(self):
        plan = FaultPlan.parse("seed=2;machine-crash:rate=0.5")
        sweep = small_sweep(crash_rate=0.25, fault_plan=plan)
        assert sweep.crash_rate == 0.25

    def test_draws_are_per_arm_stable(self):
        assert (background_load(3, 0, "m1")
                == background_load(3, 0, "m1"))
        assert (background_load(3, 0, "m1")
                != background_load(3, 1, "m1"))
        assert crashed(3, 0, "m1", 0.0) is False


class TestResultCache:
    def test_cache_roundtrip(self, tmp_path):
        first = small_sweep().run(workers=1, cache_dir=str(tmp_path))
        # A cached re-run must not recompute: poison the shard runner.
        import repro.fleet.sweep as sweep_mod

        def boom(spec):
            raise AssertionError("cache miss: shard recomputed")

        original = sweep_mod.run_sweep_shard
        sweep_mod.run_sweep_shard = boom
        try:
            second = small_sweep().run(workers=1, cache_dir=str(tmp_path))
        finally:
            sweep_mod.run_sweep_shard = original
        assert sweep_digest(first) == sweep_digest(second)

    def test_key_excludes_batch_size_and_workers(self, tmp_path):
        small_sweep(batch_size=0).run(workers=2, cache_dir=str(tmp_path))
        material = small_sweep(batch_size=7).cache_key_material()
        assert material == small_sweep(batch_size=0).cache_key_material()
        assert "batch_size" not in material
        assert "workers" not in material

    def test_key_includes_the_physics(self):
        base = small_sweep().cache_key_material()
        assert small_sweep(seed=4).cache_key_material() != base
        assert small_sweep(crash_rate=0.1).cache_key_material() != base
        assert small_sweep(mode="control").cache_key_material() != base


class TestResultObject:
    def test_roundtrip_is_digest_exact(self):
        result = small_sweep(crash_rate=0.4).run(workers=1)
        clone = MicroSweepResult.from_dict(result.to_dict())
        assert sweep_digest(clone) == sweep_digest(result)

    def test_merge_concatenates(self):
        a = MicroSweepResult(mode="off", machines=1, down=0,
                             arms=[{"machine": "s0/m0", "down": False,
                                    "elapsed_ns": 2.0}])
        b = MicroSweepResult(mode="off", machines=2, down=1,
                             arms=[{"machine": "s1/m0", "down": True,
                                    "elapsed_ns": 0.0},
                                   {"machine": "s1/m1", "down": False,
                                    "elapsed_ns": 4.0}])
        merged = a.merge(b)
        assert merged is a
        assert merged.machines == 3 and merged.down == 1
        assert merged.total("elapsed_ns") == 6.0
        assert merged.mean_elapsed_ns() == 3.0

    def test_merge_rejects_mode_mismatch(self):
        a = MicroSweepResult(mode="off")
        with pytest.raises(ConfigError):
            a.merge(MicroSweepResult(mode="control"))

    def test_validation(self):
        with pytest.raises(ConfigError):
            MicroFleetSweep(mode="on")
        with pytest.raises(ConfigError):
            MicroFleetSweep(machines=0)
        with pytest.raises(ConfigError):
            MicroFleetSweep(scale=0.0)
        with pytest.raises(ConfigError):
            MicroFleetSweep(crash_rate=1.0)


class TestStudyBridges:
    def test_ablation_bridge(self):
        study = AblationStudy(mode="off", machines=6, epochs=4, warmup_epochs=1)
        sweep = study.micro_sweep(scale=SCALE, batch_size=5)
        assert isinstance(sweep, MicroFleetSweep)
        assert sweep.machines == 6
        assert sweep.seed == study.seed
        assert sweep.batch_size == 5
        assert sweep.mode == "off"

    def test_rollout_bridge(self):
        study = RolloutStudy(machines=6, epochs=4, warmup_epochs=1)
        stages = study.micro_sweep_stages(scale=SCALE)
        assert set(stages) == {"before", "after"}
        assert stages["before"].mode == "control"
        assert stages["after"].mode == "off"
        assert stages["before"].machines == 6


class TestBatchPlumbing:
    def test_plan_batches_balanced(self):
        assert plan_batches(13, 5) == [(0, 5), (5, 9), (9, 13)]
        assert plan_batches(8, 4) == [(0, 4), (4, 8)]
        assert plan_batches(3, 64) == [(0, 3)]
        assert plan_batches(1, 1) == [(0, 1)]

    def test_plan_batches_covers_every_arm_once(self):
        for count in (1, 7, 13, 64, 257):
            for size in (1, 3, 32):
                slices = plan_batches(count, size)
                seen = [i for start, stop in slices
                        for i in range(start, stop)]
                assert seen == list(range(count))
                widths = {stop - start for start, stop in slices}
                assert max(widths) - min(widths) <= 1
                assert max(widths) <= size

    def test_plan_batches_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            plan_batches(0, 4)
        with pytest.raises(ConfigError):
            plan_batches(4, 0)

    def test_resolve_explicit(self):
        assert resolve_batch_size(0) == 0
        assert resolve_batch_size(7) == 7
        with pytest.raises(ConfigError):
            resolve_batch_size(-1)

    def test_resolve_env(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV_VAR, raising=False)
        assert resolve_batch_size(None) == DEFAULT_BATCH_SIZE
        monkeypatch.setenv(BATCH_ENV_VAR, "64")
        assert resolve_batch_size(None) == 64
        monkeypatch.setenv(BATCH_ENV_VAR, "0")
        assert resolve_batch_size(None) == 0
        monkeypatch.setenv(BATCH_ENV_VAR, "off")
        assert resolve_batch_size(None) == 0
        monkeypatch.setenv(BATCH_ENV_VAR, "lots")
        with pytest.raises(ConfigError):
            resolve_batch_size(None)
        monkeypatch.setenv(BATCH_ENV_VAR, "-3")
        with pytest.raises(ConfigError):
            resolve_batch_size(None)
