"""Tests for ``repro report <run-dir>`` and the report builder."""

import json

import pytest

from repro.analysis import ChaosStudy
from repro.cli import main
from repro.faults import FaultPlan
from repro.fleet import AblationStudy
from repro.obs import build_report, render_report


@pytest.fixture(scope="module")
def ablation_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs") / "ablation"
    AblationStudy(mode="hard", machines=6, epochs=8, warmup_epochs=3,
                  seed=9, shard_size=3).run(workers=2, obs_dir=str(out))
    return out


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs") / "chaos"
    plan = FaultPlan.parse("seed=2;telemetry-blackout:start=200,duration=80")
    ChaosStudy(plan, machines=4, epochs=30, warmup_epochs=5,
               seed=11).run(obs_dir=str(out))
    return out


class TestBuildReport:
    def test_payload_shape(self, ablation_run):
        payload = build_report(str(ablation_run))
        assert payload["schema_ok"] is True
        assert payload["manifest"]["run"]["study"] == "ablation"
        assert payload["events"]["count"] > 0
        assert payload["shards"], "per-shard rows expected"
        assert payload["phases"], "phase timings expected"

    def test_shard_rows_cover_population(self, ablation_run):
        payload = build_report(str(ablation_run))
        assert [row["index"] for row in payload["shards"]] == [0, 1]

    def test_chaos_incidents_summarised(self, chaos_run):
        payload = build_report(str(chaos_run))
        incidents = payload["incidents"]
        assert incidents["count"] >= 1
        assert "telemetry-blackout" in incidents["by_kind"]
        if incidents["resolved"]:
            assert incidents["mttr_ns"] > 0

    def test_payload_is_json_serialisable(self, chaos_run):
        json.dumps(build_report(str(chaos_run)))


class TestRenderReport:
    def test_ablation_sections(self, ablation_run):
        text = render_report(str(ablation_run))
        assert "run: ablation" in text
        assert "timing breakdown" in text
        assert "shards" in text
        assert "timeline" in text

    def test_chaos_sections(self, chaos_run):
        text = render_report(str(chaos_run))
        assert "incident" in text
        assert "failsafe-engaged" in text or "incident-open" in text

    def test_timeline_is_capped(self, ablation_run):
        text = render_report(str(ablation_run), timeline_limit=3)
        assert "more" in text


class TestReportCli:
    def test_run_dir_dispatch(self, ablation_run, capsys):
        assert main(["report", str(ablation_run)]) == 0
        out = capsys.readouterr().out
        assert "run: ablation" in out

    def test_json_flag(self, ablation_run, capsys):
        assert main(["report", str(ablation_run), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_ok"] is True

    def test_obs_dir_flag_writes_run(self, tmp_path, capsys):
        out = tmp_path / "run"
        assert main(["ablation", "--machines", "4", "--epochs", "6",
                     "--warmup", "2", "--mode", "hard",
                     "--obs-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "events.jsonl").is_file()
        assert (out / "manifest.json").is_file()
        assert main(["report", str(out)]) == 0
        assert "run: ablation" in capsys.readouterr().out
