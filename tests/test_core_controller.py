"""Tests for the Hard Limoncello hysteresis controller (Figure 8/9)."""

import pytest

from repro.core import (
    ControllerState,
    HardLimoncelloController,
    LimoncelloConfig,
    SingleThresholdController,
)
from repro.errors import TelemetryError
from repro.units import SECOND


def make_controller(lower=0.6, upper=0.8, sustain=3.0 * SECOND):
    return HardLimoncelloController(LimoncelloConfig(
        lower_threshold=lower, upper_threshold=upper,
        sustain_duration_ns=sustain))


def feed(controller, samples, period=1.0 * SECOND, start=0.0):
    """Feed a list of utilizations at 1s intervals; returns final states."""
    states = []
    for i, utilization in enumerate(samples):
        states.append(controller.observe(start + i * period, utilization))
    return states


class TestBasicTransitions:
    def test_starts_enabled(self):
        assert make_controller().prefetchers_enabled

    def test_sustained_high_disables(self):
        controller = make_controller()
        feed(controller, [0.9, 0.9, 0.9, 0.9])
        assert controller.state is ControllerState.DISABLED
        assert not controller.prefetchers_enabled

    def test_brief_spike_does_not_disable(self):
        """The whole point of the sustain timer: a burst shorter than the
        sustain duration must not toggle prefetchers (Figure 7)."""
        controller = make_controller()
        feed(controller, [0.9, 0.9, 0.5, 0.9, 0.9, 0.5])
        assert controller.prefetchers_enabled

    def test_sustained_low_reenables(self):
        controller = make_controller()
        feed(controller, [0.9] * 4)          # disable
        feed(controller, [0.5] * 4, start=4.0 * SECOND)
        assert controller.state is ControllerState.ENABLED

    def test_between_thresholds_holds_state(self):
        """0.6 < u < 0.8 must never change state, whichever side we're on
        (the dual-threshold hysteresis)."""
        controller = make_controller()
        feed(controller, [0.7] * 10)
        assert controller.prefetchers_enabled
        feed(controller, [0.9] * 4, start=10.0 * SECOND)   # disable
        feed(controller, [0.7] * 10, start=14.0 * SECOND)  # hold
        assert not controller.prefetchers_enabled

    def test_figure9_scenario(self):
        """The worked example of Figure 9: UT=80, LT=60.

        Bandwidth: sustained 85 (disable at ~t0+sustain), dips to 75 (no
        re-enable: above LT), drops to 55 (re-enable after sustain), rises
        to 70 (no disable: below UT), rises to 90 (disable again)."""
        controller = make_controller(sustain=2.0 * SECOND)
        feed(controller, [0.85] * 4)                       # -> disabled
        assert not controller.prefetchers_enabled
        feed(controller, [0.75] * 4, start=4 * SECOND)     # still disabled
        assert not controller.prefetchers_enabled
        feed(controller, [0.55] * 4, start=8 * SECOND)     # -> enabled
        assert controller.prefetchers_enabled
        feed(controller, [0.70] * 4, start=12 * SECOND)    # still enabled
        assert controller.prefetchers_enabled
        feed(controller, [0.90] * 4, start=16 * SECOND)    # -> disabled
        assert not controller.prefetchers_enabled
        assert controller.transitions == 3


class TestTimingStates:
    def test_overloaded_state_entered(self):
        controller = make_controller()
        feed(controller, [0.9])
        assert controller.state is ControllerState.OVERLOADED
        assert controller.prefetchers_enabled  # still on while timing

    def test_underloaded_state_entered(self):
        controller = make_controller()
        feed(controller, [0.9] * 4)
        controller.observe(4.0 * SECOND, 0.5)
        assert controller.state is ControllerState.UNDERLOADED
        assert not controller.prefetchers_enabled  # still off while timing

    def test_timer_resets_when_condition_breaks(self):
        controller = make_controller(sustain=3.0 * SECOND)
        feed(controller, [0.9, 0.9, 0.7, 0.9, 0.9, 0.9])
        # Timer restarted at t=3; expires at t=3+3=6, not earlier.
        assert controller.decisions[-1].state is ControllerState.OVERLOADED
        controller.observe(6.0 * SECOND, 0.9)
        assert controller.state is ControllerState.DISABLED

    def test_zero_sustain_flips_immediately(self):
        controller = make_controller(sustain=0.0)
        controller.observe(0.0, 0.9)
        assert controller.state is ControllerState.DISABLED
        controller.observe(1.0 * SECOND, 0.5)
        assert controller.state is ControllerState.ENABLED

    def test_exact_threshold_boundaries(self):
        """At exactly the upper threshold nothing happens (> not >=);
        at exactly the lower threshold nothing happens (< not <=)."""
        controller = make_controller()
        feed(controller, [0.8] * 10)
        assert controller.state is ControllerState.ENABLED
        feed(controller, [0.9] * 4, start=10 * SECOND)
        feed(controller, [0.6] * 10, start=14 * SECOND)
        assert controller.state is ControllerState.DISABLED


class TestRobustness:
    def test_time_cannot_go_backwards(self):
        controller = make_controller()
        controller.observe(5.0, 0.5)
        with pytest.raises(TelemetryError):
            controller.observe(4.0, 0.5)

    def test_gap_in_samples_timer_still_runs(self):
        """Telemetry dropouts do not freeze the sustain timer."""
        controller = make_controller(sustain=3.0 * SECOND)
        controller.observe(0.0, 0.9)
        controller.observe(10.0 * SECOND, 0.9)  # big gap, still overloaded
        assert controller.state is ControllerState.DISABLED

    def test_decisions_recorded(self):
        controller = make_controller()
        feed(controller, [0.5, 0.9])
        assert len(controller.decisions) == 2
        assert controller.decisions[0].utilization == 0.5

    def test_changed_flag_set_only_on_flips(self):
        controller = make_controller(sustain=0.0)
        states = feed(controller, [0.5, 0.9, 0.9, 0.5])
        assert [s.changed for s in states] == [False, True, False, True]


class TestStateIntervals:
    def test_intervals_partition_history(self):
        controller = make_controller(sustain=0.0)
        feed(controller, [0.5, 0.9, 0.9, 0.5, 0.5])
        intervals = controller.state_intervals()
        assert intervals[0][2] is True
        assert intervals[1][2] is False
        assert intervals[2][2] is True
        # Contiguous coverage.
        for (a, b, _), (c, d, _) in zip(intervals, intervals[1:]):
            assert b == c

    def test_empty_history(self):
        assert make_controller().state_intervals() == []


class TestSingleThresholdBaseline:
    def test_flips_immediately(self):
        controller = SingleThresholdController(threshold=0.8)
        controller.observe(0.0, 0.9)
        assert not controller.prefetchers_enabled
        controller.observe(1.0, 0.7)
        assert controller.prefetchers_enabled

    def test_thrashes_on_volatile_input(self):
        """The pathology hysteresis exists to prevent."""
        hysteresis = make_controller()
        baseline = SingleThresholdController(threshold=0.8)
        volatile = [0.9, 0.7, 0.9, 0.7, 0.9, 0.7, 0.9, 0.7]
        feed(hysteresis, volatile)
        for i, u in enumerate(volatile):
            baseline.observe(i * SECOND, u)
        assert baseline.transitions >= 7
        assert hysteresis.transitions == 0

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            SingleThresholdController(threshold=0.0)

    def test_time_monotonicity(self):
        controller = SingleThresholdController()
        controller.observe(5.0, 0.5)
        with pytest.raises(TelemetryError):
            controller.observe(1.0, 0.5)
