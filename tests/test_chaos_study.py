"""End-to-end chaos study tests: fail-safe incidents, shard equality,
metric merge algebra, and serialization."""

import pytest

from repro.analysis import ChaosStudy, chaos_default_config, result_digest
from repro.errors import TraceError
from repro.faults import ChaosMetrics, FaultPlan
from repro.serialization import (
    ablation_result_from_dict,
    ablation_result_to_dict,
    chaos_metrics_from_dict,
    chaos_metrics_to_dict,
)
from repro.units import SECOND


def small_study(spec, **kwargs):
    kwargs.setdefault("machines", 4)
    kwargs.setdefault("epochs", 30)
    kwargs.setdefault("warmup_epochs", 5)
    kwargs.setdefault("seed", 11)
    return ChaosStudy(FaultPlan.parse(spec), **kwargs)


class TestChaosStudy:
    def test_blackout_triggers_failsafe_incident(self):
        """The ISSUE acceptance scenario: a telemetry blackout engages
        the fail-safe within the configured deadline and the incident
        lands in the merged chaos metrics."""
        study = small_study("seed=7;telemetry-blackout:start=120,duration=60")
        outcome = study.run()
        chaos = outcome.chaos
        assert chaos.failsafe_engagements > 0
        assert chaos.incident_kinds.get("telemetry-blackout", 0) > 0
        assert chaos.recovered_incidents > 0
        # Detection happens at the fail-safe deadline, not before.
        deadline = chaos_default_config().telemetry_failsafe_deadline_ns
        blackout_count = chaos.incident_kinds["telemetry-blackout"]
        assert chaos.detection_latency_ns >= blackout_count * deadline
        assert outcome.mean_time_to_recovery_ns() is not None
        assert 0.0 < outcome.availability() < 1.0
        assert outcome.duty_cycle_error() >= 0.0

    def test_machine_crashes_recorded(self):
        study = small_study(
            "seed=3;machine-crash:rate=0.05,outage=1,restart=enabled")
        outcome = study.run()
        assert outcome.chaos.machine_crashes > 0
        assert outcome.chaos.machine_restarts > 0
        assert outcome.chaos.down_ticks > 0
        assert outcome.chaos.availability() < 1.0

    def test_serial_and_sharded_runs_are_bit_identical(self):
        spec = ("seed=5;telemetry-drop:rate=0.1;msr-transient:rate=0.2;"
                "machine-crash:rate=0.03,outage=1")
        serial = small_study(spec, shard_size=2).run(workers=1)
        sharded = small_study(spec, shard_size=2).run(workers=2)
        assert result_digest(serial.faulted) == result_digest(sharded.faulted)
        assert result_digest(serial.baseline) == \
            result_digest(sharded.baseline)

    def test_baseline_is_fault_free(self):
        study = small_study("seed=9;telemetry-drop:rate=0.3")
        outcome = study.run()
        baseline_chaos = outcome.baseline.chaos
        assert baseline_chaos is not None
        assert baseline_chaos.dropouts == 0
        assert baseline_chaos.incidents == 0
        assert outcome.chaos.dropouts > 0


def metrics(**kwargs):
    m = ChaosMetrics()
    for key, value in kwargs.items():
        setattr(m, key, value)
    return m


class TestChaosMetricsMerge:
    def test_merge_is_additive(self):
        a = metrics(ticks=10, available_ticks=8, dropouts=2, incidents=1,
                    incident_kinds={"telemetry-blackout": 1})
        b = metrics(ticks=5, available_ticks=5, incidents=2,
                    incident_kinds={"telemetry-blackout": 1,
                                    "machine-restart": 1})
        a.merge(b)
        assert a.ticks == 15
        assert a.available_ticks == 13
        assert a.dropouts == 2
        assert a.incidents == 3
        assert a.incident_kinds == {"telemetry-blackout": 2,
                                    "machine-restart": 1}

    def test_merge_is_associative(self):
        def fresh():
            return (metrics(ticks=3, down_ticks=1, recovery_time_ns=2.0,
                            recovered_incidents=1),
                    metrics(ticks=7, failsafe_engagements=2),
                    metrics(ticks=2, machine_crashes=1,
                            incident_kinds={"machine-restart": 1}))

        a, b, c = fresh()
        left = ChaosMetrics()
        left.merge(a)
        left.merge(b)
        left.merge(c)

        a, b, c = fresh()
        b.merge(c)
        right = ChaosMetrics()
        right.merge(a)
        right.merge(b)
        assert chaos_metrics_to_dict(left) == chaos_metrics_to_dict(right)

    def test_availability_and_mttr(self):
        m = metrics(ticks=90, available_ticks=90, down_ticks=10,
                    recovery_time_ns=60.0 * SECOND, recovered_incidents=3)
        assert m.availability() == pytest.approx(0.9)
        assert m.mean_time_to_recovery_ns() == pytest.approx(20.0 * SECOND)
        empty = ChaosMetrics()
        assert empty.availability() == 1.0
        assert empty.mean_time_to_recovery_ns() is None


class TestChaosSerialization:
    def test_roundtrip(self):
        m = metrics(ticks=20, available_ticks=18, dropouts=2,
                    invalid_samples=1, incidents=2, recovered_incidents=1,
                    detection_latency_ns=3.0 * SECOND,
                    recovery_time_ns=9.0 * SECOND,
                    failsafe_engagements=1, machine_crashes=1,
                    machine_restarts=1, down_ticks=4,
                    incident_kinds={"telemetry-blackout": 2})
        restored = chaos_metrics_from_dict(chaos_metrics_to_dict(m))
        assert chaos_metrics_to_dict(restored) == chaos_metrics_to_dict(m)

    def test_malformed_payload_rejected(self):
        with pytest.raises(TraceError):
            chaos_metrics_from_dict({"ticks": "many"})
        with pytest.raises(TraceError):
            chaos_metrics_from_dict([1, 2, 3])

    def test_ablation_result_roundtrip_with_chaos(self):
        study = small_study("seed=2;telemetry-drop:rate=0.2")
        outcome = study.run()
        payload = ablation_result_to_dict(outcome.faulted)
        assert "chaos" in payload
        restored = ablation_result_from_dict(payload)
        assert result_digest(restored) == result_digest(outcome.faulted)

    def test_ablation_result_roundtrip_without_chaos(self):
        study = small_study("seed=2;telemetry-drop:rate=0.2")
        outcome = study.run()
        payload = ablation_result_to_dict(outcome.faulted)
        del payload["chaos"]
        restored = ablation_result_from_dict(payload)
        assert restored.chaos is None
