"""CART training must be a pure function of the training *set*.

Shuffled row order, duplicated scans, and retraining from the same
cached sweeps must all grow byte-identical trees — the CI policy gate
trains twice and diffs digests, and these tests pin the properties that
make that gate meaningful.
"""

import random

import pytest

from repro.errors import ConfigError
from repro.policy import (DecisionTreePolicy, feature_vector, policy_digest,
                          policy_from_dict, predict_tree, train_tree,
                          tree_depth, tree_leaves)
from repro.serialization import canonical_json


def _rows(seed=4, count=200):
    """A deterministic, learnably-structured training set."""
    rng = random.Random(seed)
    rows, labels = [], []
    for _ in range(count):
        util = rng.random()
        rows.append(feature_vector(
            utilization=util,
            util_mean=min(1.0, util + rng.uniform(-0.05, 0.05)),
            util_slope=rng.uniform(-0.1, 0.1),
            duty_cycle=rng.random(),
            accuracy=0.6, coverage=0.3))
        labels.append(util <= 0.8)
    return rows, labels


class TestTrainTree:
    def test_learns_the_generating_threshold(self):
        rows, labels = _rows()
        tree = train_tree(rows, labels)
        assert tree_depth(tree) >= 1
        assert predict_tree(tree, feature_vector(utilization=0.2)) is True
        assert predict_tree(tree, feature_vector(utilization=0.95)) is False

    def test_row_order_invariance(self):
        """Shuffling the training rows must not change the tree."""
        rows, labels = _rows()
        baseline = train_tree(rows, labels)
        for shuffle_seed in (1, 2, 3):
            paired = list(zip(rows, labels))
            random.Random(shuffle_seed).shuffle(paired)
            shuffled_rows = [row for row, _ in paired]
            shuffled_labels = [label for _, label in paired]
            assert train_tree(shuffled_rows, shuffled_labels) == baseline

    def test_pure_leaf_shortcut(self):
        rows, labels = _rows()
        tree = train_tree(rows, [True] * len(labels))
        assert tree == {"leaf": True}

    def test_min_samples_leaf_respected(self):
        rows, labels = _rows(count=30)
        tree = train_tree(rows, labels, min_samples_leaf=16)
        assert tree_leaves(tree) == 1

    def test_empty_training_set_defaults_enabled(self):
        tree = train_tree([], [])
        assert predict_tree(tree, feature_vector()) is True

    def test_tie_prediction_is_enabled(self):
        rows = [feature_vector(utilization=0.5)] * 4
        labels = [True, True, False, False]
        tree = train_tree(rows, labels)
        assert predict_tree(tree, feature_vector(utilization=0.5)) is True

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            train_tree([feature_vector()], [])


class TestDecisionTreePolicy:
    def _policy(self):
        rows, labels = _rows()
        tree = train_tree(rows, labels)
        return DecisionTreePolicy(
            trees={"l2_stream": tree, "l1_stride": tree},
            stats={"l2_stream": {"accuracy": 0.7, "coverage": 0.4},
                   "l1_stride": {"accuracy": 0.2, "coverage": 0.1}},
            prefetchers=("l2_stream", "l1_stride"))

    def test_digest_stable_across_round_trip(self):
        policy = self._policy()
        clone = policy_from_dict(policy.to_dict())
        assert policy_digest(clone) == policy_digest(policy)
        assert canonical_json(clone.to_dict()) \
            == canonical_json(policy.to_dict())

    def test_decides_per_prefetcher(self):
        policy = self._policy()
        decisions = policy.decide(0.0, feature_vector(utilization=0.3))
        assert set(decisions) == {"l2_stream", "l1_stride"}

    def test_overlays_static_stats_not_input_features(self):
        """The accuracy/coverage a tree sees are the policy's baked-in
        per-prefetcher measurements, not whatever the caller passed."""
        rows = [feature_vector(accuracy=a) for a in
                [0.1] * 20 + [0.9] * 20]
        labels = [False] * 20 + [True] * 20
        tree = train_tree(rows, labels, min_samples_leaf=2)
        policy = DecisionTreePolicy(
            trees={"l2_stream": tree},
            stats={"l2_stream": {"accuracy": 0.9, "coverage": 0.0}},
            prefetchers=("l2_stream",))
        # caller claims low accuracy; the baked-in 0.9 must win
        decisions = policy.decide(0.0, feature_vector(accuracy=0.1))
        assert decisions["l2_stream"] is True

    def test_missing_tree_rejected(self):
        with pytest.raises(ConfigError, match="no tree"):
            DecisionTreePolicy(trees={"l2_stream": {"leaf": True}},
                               prefetchers=("l2_stream", "l1_stride"))

    def test_feature_schema_mismatch_rejected(self):
        payload = self._policy().to_dict()
        payload["feature_schema"] = 0
        with pytest.raises(ConfigError, match="feature schema"):
            policy_from_dict(payload)

    def test_trained_from_provenance_changes_digest(self):
        policy = self._policy()
        tagged = DecisionTreePolicy(
            trees=policy.trees, stats=policy.stats,
            prefetchers=policy.prefetchers,
            trained_from={"ablation": {"seed": 11}})
        assert policy_digest(tagged) != policy_digest(policy)
