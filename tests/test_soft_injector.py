"""Tests for the software-prefetch trace injector."""

import pytest

from repro.access import AccessKind, AddressSpace, MemoryAccess, Trace
from repro.core import PrefetchDescriptor, SoftwarePrefetchInjector
from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES
from repro.workloads import hashing_trace, memcpy_trace


def prefetches(trace):
    return [r for r in trace if r.kind is AccessKind.SOFTWARE_PREFETCH]


def injector_for(function="memcpy", **kwargs):
    return SoftwarePrefetchInjector([PrefetchDescriptor(function, **kwargs)])


class TestStreamDetection:
    def test_untargeted_functions_untouched(self):
        trace = memcpy_trace(0x10000, 0x90000, 4096)
        injector = injector_for("some_other_function")
        out = injector.inject(trace)
        assert out == trace
        assert injector.last_stats.streams_seen == 0

    def test_memcpy_has_two_streams(self):
        """memcpy's loads and stores are separate (function, pc) streams."""
        trace = memcpy_trace(0x10000, 0x90000, 8192)
        injector = injector_for("memcpy", min_size_bytes=0)
        injector.inject(trace)
        assert injector.last_stats.streams_seen == 2
        assert injector.last_stats.streams_instrumented == 2

    def test_broken_stream_splits_runs(self):
        records = [MemoryAccess(address=0x10000 + i * 64, pc=1, function="f")
                   for i in range(8)]
        records += [MemoryAccess(address=0x90000 + i * 64, pc=1, function="f")
                    for i in range(8)]
        injector = injector_for("f")
        injector.inject(Trace(records))
        assert injector.last_stats.streams_seen == 2

    def test_existing_prefetches_ignored(self):
        trace = memcpy_trace(0x10000, 0x90000, 4096)
        injector = injector_for("memcpy")
        once = injector.inject(trace)
        count_once = len(prefetches(once))
        twice = injector_for("memcpy").inject(once)
        assert len(prefetches(twice)) == 2 * count_once  # re-inserts for
        # demand records but never treats prefetch records as stream parts.


class TestInsertionSemantics:
    def test_prefetch_addresses_are_distance_ahead(self):
        size = 64 * CACHE_LINE_BYTES
        trace = Trace([
            MemoryAccess(address=0x10000 + i * 64, pc=7, function="f")
            for i in range(64)
        ])
        injector = injector_for("f", distance_bytes=512, degree_bytes=64,
                                clamp_to_stream=False)
        out = injector.inject(trace)
        for record in prefetches(out):
            # Every prefetch lands exactly 512B ahead of some stream point.
            offset = record.address - 0x10000
            assert offset >= 512
            assert offset % 64 == 0

    def test_one_prefetch_per_degree_bytes(self):
        lines = 64
        trace = Trace([
            MemoryAccess(address=0x10000 + i * 64, pc=7, function="f")
            for i in range(lines)
        ])
        injector = injector_for("f", distance_bytes=64, degree_bytes=256,
                                clamp_to_stream=False)
        out = injector.inject(trace)
        assert len(prefetches(out)) == lines * 64 // 256

    def test_clamping_never_prefetches_past_stream(self):
        trace = Trace([
            MemoryAccess(address=0x10000 + i * 64, pc=7, function="f")
            for i in range(16)  # 1 KiB stream
        ])
        injector = injector_for("f", distance_bytes=512, degree_bytes=256,
                                clamp_to_stream=True)
        out = injector.inject(trace)
        end = 0x10000 + 16 * 64
        for record in prefetches(out):
            assert record.address + record.size <= end

    def test_unclamped_overshoots(self):
        trace = Trace([
            MemoryAccess(address=0x10000 + i * 64, pc=7, function="f")
            for i in range(16)
        ])
        injector = injector_for("f", distance_bytes=512, degree_bytes=256,
                                clamp_to_stream=False)
        out = injector.inject(trace)
        end = 0x10000 + 16 * 64
        assert any(r.address + r.size > end for r in prefetches(out))

    def test_size_gate_skips_short_streams(self):
        short = memcpy_trace(0x10000, 0x90000, 256)
        injector = injector_for("memcpy", min_size_bytes=4096)
        out = injector.inject(short)
        assert prefetches(out) == []
        assert injector.last_stats.streams_gated == 2

    def test_prefetch_pc_differs_from_demand_pc(self):
        trace = memcpy_trace(0x10000, 0x90000, 8192)
        injector = injector_for("memcpy")
        out = injector.inject(trace)
        demand_pcs = {r.pc for r in out if r.is_demand}
        prefetch_pcs = {r.pc for r in prefetches(out)}
        assert demand_pcs.isdisjoint(prefetch_pcs)

    def test_demand_records_preserved_in_order(self):
        trace = memcpy_trace(0x10000, 0x90000, 8192)
        out = injector_for("memcpy").inject(trace)
        assert list(out.demand_only()) == list(trace)

    def test_multiple_descriptors(self):
        space = AddressSpace()
        trace = memcpy_trace(0x10000, 0x90000, 8192) + hashing_trace(space, 8192)
        injector = SoftwarePrefetchInjector([
            PrefetchDescriptor("memcpy"),
            PrefetchDescriptor("hash"),
        ])
        out = injector.inject(trace)
        functions = {r.function for r in prefetches(out)}
        assert functions == {"memcpy", "hash"}

    def test_duplicate_descriptor_rejected(self):
        with pytest.raises(ConfigError):
            SoftwarePrefetchInjector([
                PrefetchDescriptor("f"), PrefetchDescriptor("f")])

    def test_stats_per_function(self):
        trace = memcpy_trace(0x10000, 0x90000, 8192)
        injector = injector_for("memcpy")
        injector.inject(trace)
        assert injector.last_stats.per_function["memcpy"] > 0
        assert (injector.last_stats.prefetches_inserted
                == sum(injector.last_stats.per_function.values()))

    def test_functions_property(self):
        injector = SoftwarePrefetchInjector([
            PrefetchDescriptor("b"), PrefetchDescriptor("a")])
        assert injector.functions == ["a", "b"]
