"""Machine RNG seeding must be stable across processes and hash salts.

The old fallback seed was ``hash(name) & 0xFFFF``, which varies between
interpreter invocations under salted string hashing (PYTHONHASHSEED) —
two runs of the "same" fleet silently used different noise streams.
"""

import hashlib
import os
import subprocess
import sys

import repro
from repro.fleet import AblationStudy
from repro.fleet.machine import Machine, machine_seed
from repro.fleet.platform import PLATFORM_1

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

PRINT_SEED = (
    "from repro.fleet.machine import Machine, machine_seed\n"
    "from repro.fleet.platform import PLATFORM_1\n"
    "machine = Machine('probe-0', PLATFORM_1, sockets=1)\n"
    "print(machine_seed('probe-0'), machine._rng.random())\n"
)


def run_with_hash_seed(hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC_DIR
    out = subprocess.run(
        [sys.executable, "-c", PRINT_SEED], env=env, capture_output=True,
        text=True, check=True)
    return out.stdout.strip()


class TestMachineSeed:
    def test_matches_blake2b_convention(self):
        digest = hashlib.blake2b(b"limoncello-machine:m-17",
                                 digest_size=8).digest()
        expected = int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF
        assert machine_seed("m-17") == expected

    def test_distinct_names_distinct_seeds(self):
        seeds = {machine_seed(f"machine-{i}") for i in range(64)}
        assert len(seeds) == 64

    def test_same_name_same_stream_in_process(self):
        first = Machine("m0", PLATFORM_1, sockets=1)
        second = Machine("m0", PLATFORM_1, sockets=1)
        assert [first._rng.random() for _ in range(5)] \
            == [second._rng.random() for _ in range(5)]

    def test_stable_across_hash_salts(self):
        """Two processes with different hash salts agree on the stream."""
        assert run_with_hash_seed("0") == run_with_hash_seed("12345")


class TestFleetRepeatability:
    def test_same_study_twice_agrees(self):
        """Two runs of the same fleet study are numerically identical."""
        def study():
            return AblationStudy(mode="off", machines=4, epochs=8,
                                 warmup_epochs=3, seed=11).run()

        first, second = study(), study()
        assert first.throughput_change() == second.throughput_change()
        assert first.bandwidth_reduction() == second.bandwidth_reduction()
        assert first.latency_reduction() == second.latency_reduction()
