"""Tests for repro.memsys.dram — the queuing latency model behind Figure 1."""

import pytest

from repro.errors import ConfigError
from repro.memsys import DRAMConfig, DRAMModel


class TestLatencyCurve:
    def test_unloaded_latency_at_zero_utilization(self):
        dram = DRAMModel(DRAMConfig(unloaded_latency_ns=90.0))
        assert dram.latency_at_utilization(0.0) == pytest.approx(90.0)

    def test_latency_monotonic_in_utilization(self):
        dram = DRAMModel(DRAMConfig())
        points = [dram.latency_at_utilization(u / 20) for u in range(25)]
        assert all(b >= a for a, b in zip(points, points[1:]))

    def test_knee_shape_matches_figure1(self):
        """Figure 1: roughly 2x latency growth by full utilization, with
        most of the growth concentrated past ~60% utilization."""
        dram = DRAMModel(DRAMConfig())
        low = dram.latency_at_utilization(0.1)
        mid = dram.latency_at_utilization(0.6)
        high = dram.latency_at_utilization(0.97)
        assert mid < 1.4 * low          # flat-ish early
        assert high > 2.0 * low         # steep near saturation

    def test_overload_keeps_growing(self):
        dram = DRAMModel(DRAMConfig())
        at_max = dram.latency_at_utilization(0.98)
        beyond = dram.latency_at_utilization(1.2)
        assert beyond > at_max

    def test_negative_clamped(self):
        dram = DRAMModel(DRAMConfig())
        assert dram.latency_at_utilization(-1.0) == dram.latency_at_utilization(0.0)


class TestBandwidthAccounting:
    def test_requests_accumulate_bandwidth(self):
        dram = DRAMModel(DRAMConfig(window_ns=1000.0, saturation_bandwidth=3.0))
        for i in range(10):
            dram.request(float(i), is_prefetch=False)
        assert dram.achieved_bandwidth(10.0) == pytest.approx(640 / 1000.0)

    def test_window_forgets(self):
        dram = DRAMModel(DRAMConfig(window_ns=100.0))
        dram.request(0.0)
        assert dram.achieved_bandwidth(1000.0) == 0.0

    def test_demand_vs_prefetch_fills(self):
        dram = DRAMModel(DRAMConfig())
        dram.request(0.0, is_prefetch=False)
        dram.request(1.0, is_prefetch=True)
        dram.request(2.0, is_prefetch=True)
        assert dram.demand_fills == 1
        assert dram.prefetch_fills == 2
        assert dram.total_fills == 3
        assert dram.demand_bytes == 64
        assert dram.prefetch_bytes == 128

    def test_completion_time_uses_pre_request_utilization(self):
        config = DRAMConfig(window_ns=100.0, saturation_bandwidth=1.0,
                            unloaded_latency_ns=90.0)
        dram = DRAMModel(config)
        first = dram.request(0.0)
        assert first == pytest.approx(90.0)  # empty window -> unloaded

    def test_latency_rises_under_load(self):
        config = DRAMConfig(window_ns=1000.0, saturation_bandwidth=0.5)
        dram = DRAMModel(config)
        first = dram.request(0.0) - 0.0
        for i in range(1, 8):
            dram.request(float(i))
        loaded = dram.request(8.0) - 8.0
        assert loaded > first

    def test_external_load_raises_utilization(self):
        config = DRAMConfig(saturation_bandwidth=3.0)
        quiet = DRAMModel(config)
        busy = DRAMModel(config, external_load=lambda now: 2.7)
        assert busy.utilization(0.0) == pytest.approx(0.9)
        assert busy.request(0.0) - 0.0 > quiet.request(0.0) - 0.0

    def test_reset_window(self):
        dram = DRAMModel(DRAMConfig())
        dram.request(0.0)
        dram.reset_window()
        assert dram.achieved_bandwidth(0.0) == 0.0
        assert dram.demand_fills == 1  # counters survive


class TestConfigValidation:
    def test_bad_saturation(self):
        with pytest.raises(ConfigError):
            DRAMConfig(saturation_bandwidth=0.0)

    def test_bad_max_utilization(self):
        with pytest.raises(ConfigError):
            DRAMConfig(max_utilization=1.0)

    def test_bad_window(self):
        with pytest.raises(ConfigError):
            DRAMConfig(window_ns=0.0)

    def test_bad_overload_gain(self):
        with pytest.raises(ConfigError):
            DRAMConfig(overload_gain=-1.0)
