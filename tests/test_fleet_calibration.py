"""Tests for the calibration bridge between micro and fleet levels."""

import pytest

from repro.errors import ConfigError
from repro.fleet import (
    DEFAULT_RESPONSES,
    FunctionResponse,
    ResponseTable,
    calibrate_from_simulator,
)
from repro.workloads import FUNCTION_ROSTER, FunctionCategory, TAX_CATEGORIES


class TestDefaultTable:
    def test_covers_whole_roster(self):
        for name in FUNCTION_ROSTER:
            assert name in DEFAULT_RESPONSES

    def test_tax_functions_regress_nontax_do_not(self):
        for response in DEFAULT_RESPONSES:
            if response.is_tax:
                assert response.cycle_penalty_off > 0
            elif response.name == "misc_streaming":
                # The modelled long tail of prefetch-friendly-but-cold
                # code regresses without being a Soft target (§4.1).
                assert response.cycle_penalty_off > 0
                assert response.soft_recovery == 0.0
            else:
                assert response.cycle_penalty_off <= 0

    def test_mpki_off_never_below_on(self):
        for response in DEFAULT_RESPONSES:
            assert response.mpki_off >= response.mpki_on

    def test_soft_recovery_only_for_tax(self):
        for response in DEFAULT_RESPONSES:
            if not response.is_tax:
                assert response.soft_recovery == 0.0

    def test_effective_penalty_with_soft(self):
        memcpy = DEFAULT_RESPONSES["memcpy"]
        assert memcpy.effective_penalty(soft_deployed=True) \
            < 0.2 * memcpy.effective_penalty(soft_deployed=False)

    def test_mpki_under_configurations(self):
        memcpy = DEFAULT_RESPONSES["memcpy"]
        assert memcpy.mpki(True, False) == memcpy.mpki_on
        assert memcpy.mpki(False, False) == memcpy.mpki_off
        soft = memcpy.mpki(False, True)
        assert memcpy.mpki_on <= soft < 0.2 * memcpy.mpki_off

    def test_weighted_helpers(self):
        shares = {"memcpy": 0.5, "pointer_chase": 0.5}
        penalty = DEFAULT_RESPONSES.weighted_penalty(shares, False)
        assert 0 < penalty < DEFAULT_RESPONSES["memcpy"].cycle_penalty_off
        overfetch = DEFAULT_RESPONSES.weighted_overfetch(shares)
        assert overfetch > 0

    def test_unknown_function_raises(self):
        with pytest.raises(ConfigError):
            DEFAULT_RESPONSES["nope"]

    def test_duplicate_rejected(self):
        entry = DEFAULT_RESPONSES["memcpy"]
        with pytest.raises(ConfigError):
            ResponseTable([entry, entry])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ResponseTable([])

    def test_validation(self):
        with pytest.raises(ConfigError):
            FunctionResponse("x", FunctionCategory.NON_TAX, 2.0, 0.0, 0.0,
                             1.0, 1.0, 0.0)
        with pytest.raises(ConfigError):
            FunctionResponse("x", FunctionCategory.NON_TAX, 0.1, 0.0, 0.0,
                             -1.0, 1.0, 0.0)


class TestRecalibration:
    """The default constants must agree with a fresh simulator run in
    sign and ordering (absolute values drift with simulator tuning)."""

    @pytest.fixture(scope="class")
    def fresh(self):
        return calibrate_from_simulator(seed=42)

    def test_signs_agree_with_defaults(self, fresh):
        for response in fresh:
            default = DEFAULT_RESPONSES[response.name]
            if default.is_tax or response.name == "misc_streaming":
                assert response.cycle_penalty_off > 0, response.name
            else:
                assert response.cycle_penalty_off < 0.05, response.name

    def test_tax_mpki_explodes_without_prefetchers(self, fresh):
        for response in fresh:
            if response.category in TAX_CATEGORIES \
                    and response.name not in ("memmove", "memset"):
                assert response.mpki_off > 3 * response.mpki_on, response.name

    def test_soft_recovery_high_for_streaming_tax(self, fresh):
        for name in ("memcpy", "compress", "hash", "crc32", "serialize",
                     "deserialize"):
            assert fresh[name].soft_recovery > 0.7, name

    def test_categories_match_roster(self, fresh):
        for response in fresh:
            assert response.category is FUNCTION_ROSTER[response.name].category
