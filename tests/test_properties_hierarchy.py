"""Property-based tests for MemoryHierarchy timing invariants."""

from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.access import AccessKind, MemoryAccess, Trace
from repro.memsys import MemoryHierarchy, PrefetcherBank

records = st.lists(
    st.builds(
        MemoryAccess,
        address=st.integers(min_value=0, max_value=1 << 16).map(
            lambda x: x * 64),
        size=st.just(64),
        kind=st.sampled_from((AccessKind.LOAD, AccessKind.STORE,
                              AccessKind.SOFTWARE_PREFETCH)),
        pc=st.integers(min_value=0, max_value=7),
        gap_cycles=st.integers(min_value=0, max_value=20),
    ),
    max_size=150,
)


class TestTimingInvariants:
    @given(trace_records=records)
    @settings(max_examples=scaled(100), deadline=None)
    def test_elapsed_equals_cycles_times_period(self, trace_records):
        """For single-line records, wall time is exactly total cycles
        (compute + stall) times the clock period."""
        trace = Trace(trace_records)
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        result = hierarchy.run(trace)
        expected = result.total.cycles * hierarchy.config.cycle_ns
        assert abs(result.elapsed_ns - expected) <= 1e-6 * max(1, expected)

    @given(trace_records=records)
    @settings(max_examples=scaled(100), deadline=None)
    def test_clock_is_monotone_across_runs(self, trace_records):
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        before = hierarchy.now_ns
        hierarchy.run(Trace(trace_records))
        assert hierarchy.now_ns >= before

    @given(trace_records=records)
    @settings(max_examples=scaled(100), deadline=None)
    def test_no_prefetchers_means_demand_only_traffic(self, trace_records):
        trace = Trace(trace_records).demand_only()
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        result = hierarchy.run(trace)
        assert result.dram_prefetch_fills == 0
        assert result.dram_demand_fills == result.total.llc_misses
        assert result.hw_prefetches_issued == 0

    @given(trace_records=records)
    @settings(max_examples=scaled(100), deadline=None)
    def test_instruction_accounting_matches_trace(self, trace_records):
        trace = Trace(trace_records)
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        result = hierarchy.run(trace)
        assert result.total.instructions == trace.instruction_count

    @given(trace_records=records)
    @settings(max_examples=scaled(60), deadline=None)
    def test_prefetching_never_increases_demand_fills(self, trace_records):
        """Hardware prefetching can add prefetch traffic, but the demand
        misses it covers must disappear from demand traffic: demand fills
        with prefetchers on never exceed demand fills with them off."""
        trace = Trace(trace_records).demand_only()
        off = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(trace)
        on = MemoryHierarchy().run(trace)
        assert on.dram_demand_fills <= off.dram_demand_fills

    @given(trace_records=records)
    @settings(max_examples=scaled(60), deadline=None)
    def test_covered_plus_misses_bounded_by_demand_lines(self,
                                                         trace_records):
        trace = Trace(trace_records).demand_only()
        result = MemoryHierarchy().run(trace)
        demand_line_touches = sum(len(r.lines_touched()) for r in trace)
        assert (result.total.llc_misses + result.total.prefetch_covered
                <= demand_line_touches)

    @given(trace_records=records)
    @settings(max_examples=scaled(60), deadline=None)
    def test_runs_are_deterministic(self, trace_records):
        trace = Trace(trace_records)
        a = MemoryHierarchy().run(trace)
        b = MemoryHierarchy().run(trace)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.dram_total_fills == b.dram_total_fills
