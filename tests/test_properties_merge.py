"""Property-based tests for the shard-merge algebra.

The sharded execution engine is correct only if merging per-shard
results is associative and order-independent in every view the
evaluation reads — that is what makes parallel output equal to serial
output regardless of how shards are grouped or scheduled. Sample lists
merge by concatenation (exactly associative); scalar accumulators merge
by addition, associative up to floating-point rounding, so scalar
comparisons here use a tight relative tolerance.
"""

import copy

import pytest
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fleet import AblationResult, FleetMetrics
from repro.profiling.profile_data import ProfileData

finite = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)

metrics_strategy = st.builds(
    FleetMetrics,
    socket_bandwidth=st.lists(finite, max_size=6),
    socket_utilization=st.lists(finite, max_size=6),
    socket_latency=st.lists(finite, max_size=6),
    machine_points=st.lists(st.tuples(finite, finite, finite, finite),
                            max_size=5),
    total_qps=finite,
    ideal_qps=finite,
    rejections=st.integers(min_value=0, max_value=1000),
    epochs=st.integers(min_value=0, max_value=1000),
)


def merged(left, right):
    """Out-of-place merge (merge mutates its receiver)."""
    result = copy.deepcopy(left)
    result.merge(copy.deepcopy(right))
    return result


def assert_metrics_equal(a: FleetMetrics, b: FleetMetrics) -> None:
    assert a.socket_bandwidth == b.socket_bandwidth
    assert a.socket_utilization == b.socket_utilization
    assert a.socket_latency == b.socket_latency
    assert a.machine_points == b.machine_points
    assert a.rejections == b.rejections
    assert a.epochs == b.epochs
    assert a.total_qps == pytest.approx(b.total_qps, rel=1e-9, abs=1e-9)
    assert a.ideal_qps == pytest.approx(b.ideal_qps, rel=1e-9, abs=1e-9)


class TestFleetMetricsMerge:
    @settings(max_examples=scaled(60))
    @given(metrics_strategy, metrics_strategy, metrics_strategy)
    def test_associative(self, a, b, c):
        assert_metrics_equal(merged(merged(a, b), c),
                             merged(a, merged(b, c)))

    @settings(max_examples=scaled(60))
    @given(metrics_strategy, metrics_strategy)
    def test_summaries_order_independent(self, a, b):
        """Percentile views cannot depend on which shard merged first."""
        ab, ba = merged(a, b), merged(b, a)
        for attr, samples in (("bandwidth_summary", ab.socket_bandwidth),
                              ("latency_summary", ab.socket_latency)):
            if not samples:
                continue  # summaries reject zero observations by design
            left, right = getattr(ab, attr)(), getattr(ba, attr)()
            for field in ("mean", "p50", "p90", "p99", "peak"):
                assert getattr(left, field) == pytest.approx(
                    getattr(right, field), rel=1e-9, abs=1e-9), (attr, field)
        assert ab.saturated_socket_fraction() == pytest.approx(
            ba.saturated_socket_fraction())
        assert ab.normalized_throughput == pytest.approx(
            ba.normalized_throughput, rel=1e-9, abs=1e-9)

    @settings(max_examples=scaled(30))
    @given(metrics_strategy)
    def test_empty_is_identity(self, a):
        assert_metrics_equal(merged(a, FleetMetrics()), a)
        assert_metrics_equal(merged(FleetMetrics(), a), a)

    @settings(max_examples=scaled(30))
    @given(metrics_strategy, metrics_strategy)
    def test_counts_add(self, a, b):
        both = merged(a, b)
        assert len(both.socket_bandwidth) == (len(a.socket_bandwidth)
                                              + len(b.socket_bandwidth))
        assert both.epochs == a.epochs + b.epochs
        assert both.rejections == a.rejections + b.rejections

    def test_merge_returns_self_for_chaining(self):
        a = FleetMetrics()
        assert a.merge(FleetMetrics()) is a


FUNCTIONS = ("memcpy", "memset", "compression", "pointer_chase")

sample_strategy = st.tuples(
    st.sampled_from(FUNCTIONS),
    st.floats(min_value=0.0, max_value=1e5,
              allow_nan=False, allow_infinity=False),  # instructions
    st.floats(min_value=0.0, max_value=2e5,
              allow_nan=False, allow_infinity=False),  # cycles
    st.floats(min_value=0.0, max_value=1e3,
              allow_nan=False, allow_infinity=False),  # llc misses
)


@st.composite
def profile_strategy(draw):
    profile = ProfileData()
    for function, instructions, cycles, misses in draw(
            st.lists(sample_strategy, max_size=8)):
        profile.record(function, instructions, cycles, misses)
    profile.samples = draw(st.integers(min_value=0, max_value=100))
    return profile


def assert_profiles_equal(a: ProfileData, b: ProfileData) -> None:
    assert a.samples == b.samples
    assert set(a.as_mapping()) == set(b.as_mapping())
    for name, mine in a.as_mapping().items():
        theirs = b.function(name)
        assert mine.instructions == theirs.instructions, name
        assert mine.compute_cycles == theirs.compute_cycles, name
        assert mine.llc_misses == theirs.llc_misses, name
        assert mine.stall_cycles == pytest.approx(
            theirs.stall_cycles, rel=1e-9, abs=1e-9), name


class TestProfileDataMerge:
    @settings(max_examples=scaled(60))
    @given(profile_strategy(), profile_strategy(), profile_strategy())
    def test_associative(self, a, b, c):
        assert_profiles_equal(merged(merged(a, b), c),
                              merged(a, merged(b, c)))

    @settings(max_examples=scaled(60))
    @given(profile_strategy(), profile_strategy())
    def test_order_independent(self, a, b):
        assert_profiles_equal(merged(a, b), merged(b, a))

    @settings(max_examples=scaled(30))
    @given(profile_strategy())
    def test_empty_is_identity(self, a):
        assert_profiles_equal(merged(a, ProfileData()), a)


class TestAblationResultMerge:
    def _result(self, mode="off"):
        return AblationResult(mode=mode, control=FleetMetrics(),
                              experiment=FleetMetrics(),
                              control_profile=ProfileData(),
                              experiment_profile=ProfileData())

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            self._result("off").merge(self._result("hard"))

    def test_merges_all_four_components(self):
        left, right = self._result(), self._result()
        right.control.epochs = 3
        right.experiment.epochs = 4
        right.control_profile.samples = 5
        right.experiment_profile.samples = 6
        left.merge(right)
        assert left.control.epochs == 3
        assert left.experiment.epochs == 4
        assert left.control_profile.samples == 5
        assert left.experiment_profile.samples == 6
