"""Tests for the MemoryHierarchy timing simulator."""

import pytest

from repro.access import AccessKind, MemoryAccess, Trace
from repro.access.trace import software_prefetch
from repro.memsys import (
    MemoryHierarchy,
    PrefetcherBank,
)


def sequential_trace(lines, start=0x100000, gap=3, function="seq", pc=1):
    return Trace([
        MemoryAccess(address=start + i * 64, pc=pc, function=function,
                     gap_cycles=gap)
        for i in range(lines)
    ])


def no_prefetch_hierarchy(**kwargs):
    hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]), **kwargs)
    return hierarchy


class TestBasicTiming:
    def test_empty_trace(self):
        result = MemoryHierarchy().run(Trace())
        assert result.elapsed_ns == 0.0
        assert result.total.instructions == 0

    def test_l1_hit_costs_nothing_extra(self):
        hierarchy = no_prefetch_hierarchy()
        trace = Trace([MemoryAccess(address=0x1000)] * 3)
        result = hierarchy.run(trace)
        # First access misses to DRAM; the next two are free L1 hits.
        assert result.total.l1_misses == 1
        assert result.total.llc_misses == 1
        stats = result.total
        assert stats.stall_cycles == pytest.approx(
            (hierarchy.config.llc.hit_latency_cycles
             + hierarchy.config.dram.unloaded_latency_ns / hierarchy.config.cycle_ns),
            rel=0.01)

    def test_compute_gaps_advance_clock(self):
        hierarchy = no_prefetch_hierarchy()
        trace = Trace([MemoryAccess(address=0x1000, gap_cycles=100)])
        result = hierarchy.run(trace)
        assert result.total.compute_cycles == 101  # gap + the access itself
        assert result.total.instructions == 101

    def test_elapsed_tracks_clock(self):
        hierarchy = no_prefetch_hierarchy()
        result = hierarchy.run(sequential_trace(10))
        assert result.elapsed_ns == pytest.approx(hierarchy.now_ns)

    def test_store_counted_separately(self):
        hierarchy = no_prefetch_hierarchy()
        trace = Trace([MemoryAccess(address=0x1000, kind=AccessKind.STORE)])
        result = hierarchy.run(trace)
        assert result.total.stores == 1
        assert result.total.loads == 0

    def test_start_ns_cannot_move_backwards(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.run(sequential_trace(10), start_ns=1000.0)
        with pytest.raises(ValueError):
            hierarchy.run(sequential_trace(1), start_ns=0.0)

    def test_multi_line_access_touches_all_lines(self):
        hierarchy = no_prefetch_hierarchy()
        trace = Trace([MemoryAccess(address=0x1000, size=256)])
        result = hierarchy.run(trace)
        assert result.total.llc_misses == 4


class TestCacheBehaviour:
    def test_l2_hit_after_l1_eviction(self):
        hierarchy = no_prefetch_hierarchy()
        l1_lines = hierarchy.config.l1.size_bytes // 64
        # Touch enough distinct lines to overflow L1 but not L2.
        trace = sequential_trace(l1_lines * 2)
        hierarchy.run(trace)
        result = hierarchy.run(sequential_trace(l1_lines * 2))
        # Second pass: everything is resident in L2 (or L1), no DRAM.
        assert result.total.llc_misses == 0

    def test_reset_clears_residency(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.run(sequential_trace(100))
        hierarchy.reset()
        result = hierarchy.run(sequential_trace(100))
        assert result.total.llc_misses == 100


class TestHardwarePrefetching:
    def test_prefetchers_cut_misses_on_sequential(self):
        on = MemoryHierarchy()
        off = MemoryHierarchy()
        off.set_hardware_prefetchers(False)
        trace = sequential_trace(4096)
        r_on = on.run(trace)
        r_off = off.run(trace)
        assert r_on.total.llc_mpki < 0.2 * r_off.total.llc_mpki
        assert r_on.elapsed_ns < r_off.elapsed_ns

    def test_prefetchers_add_traffic(self):
        on = MemoryHierarchy()
        off = MemoryHierarchy()
        off.set_hardware_prefetchers(False)
        trace = sequential_trace(2048)
        r_on = on.run(trace)
        r_off = off.run(trace)
        assert r_on.dram_prefetch_fills > 0
        assert r_off.dram_prefetch_fills == 0
        assert r_on.dram_total_fills >= r_off.dram_total_fills

    def test_prefetch_covered_counted(self):
        hierarchy = MemoryHierarchy()
        result = hierarchy.run(sequential_trace(2048))
        assert result.total.prefetch_covered > 1000
        assert result.useful_prefetches == result.total.prefetch_covered

    def test_mid_run_disable_via_controls(self):
        hierarchy = MemoryHierarchy()
        hierarchy.run(sequential_trace(512))
        hierarchy.set_hardware_prefetchers(False)
        result = hierarchy.run(sequential_trace(512, start=0x900000))
        assert result.dram_prefetch_fills == 0


class TestSoftwarePrefetching:
    def test_software_prefetch_reduces_stalls(self):
        base_trace = sequential_trace(1024, gap=8)
        records = []
        distance = 8 * 64
        for record in base_trace:
            records.append(software_prefetch(record.address + distance,
                                             function="seq"))
            records.append(record)
        sw_trace = Trace(records)

        plain = no_prefetch_hierarchy().run(base_trace)
        prefetched = no_prefetch_hierarchy().run(sw_trace)
        assert prefetched.elapsed_ns < plain.elapsed_ns
        assert prefetched.total.prefetch_covered > 900

    def test_software_prefetch_never_stalls_issuer(self):
        hierarchy = no_prefetch_hierarchy()
        cost = hierarchy.config.software_prefetch_cost_cycles
        trace = Trace([software_prefetch(0x1000)])
        result = hierarchy.run(trace)
        assert result.total.compute_cycles == cost
        assert result.total.stall_cycles == 0

    def test_duplicate_prefetch_no_extra_traffic(self):
        hierarchy = no_prefetch_hierarchy()
        trace = Trace([software_prefetch(0x1000)] * 5)
        result = hierarchy.run(trace)
        assert result.dram_prefetch_fills == 1

    def test_prefetch_of_resident_line_free(self):
        hierarchy = no_prefetch_hierarchy()
        hierarchy.run(Trace([MemoryAccess(address=0x1000)]))
        result = hierarchy.run(Trace([software_prefetch(0x1000)]))
        assert result.dram_prefetch_fills == 0


class TestDistanceTimeliness:
    def run_with_distance(self, distance_lines):
        """Prefetch `distance_lines` ahead; larger distances hide more."""
        records = []
        for i in range(512):
            address = 0x100000 + i * 64
            records.append(software_prefetch(address + distance_lines * 64,
                                             function="f"))
            records.append(MemoryAccess(address=address, function="f",
                                        gap_cycles=16))
        hierarchy = no_prefetch_hierarchy()
        return hierarchy.run(Trace(records))

    def test_longer_distance_is_more_timely(self):
        near = self.run_with_distance(1)
        far = self.run_with_distance(16)
        assert far.total.late_prefetch_wait_ns < near.total.late_prefetch_wait_ns
        assert far.elapsed_ns < near.elapsed_ns


class TestPerFunctionAttribution:
    def test_functions_tracked_separately(self):
        trace = (sequential_trace(64, function="a")
                 + sequential_trace(64, start=0x500000, function="b"))
        result = no_prefetch_hierarchy().run(trace)
        assert set(result.functions) == {"a", "b"}
        assert result.function("a").llc_misses == 64
        assert result.function("b").llc_misses == 64

    def test_totals_are_sum_of_functions(self):
        trace = (sequential_trace(64, function="a")
                 + sequential_trace(64, start=0x500000, function="b"))
        result = no_prefetch_hierarchy().run(trace)
        assert result.total.instructions == sum(
            s.instructions for s in result.functions.values())

    def test_unknown_function_returns_empty(self):
        result = no_prefetch_hierarchy().run(Trace())
        assert result.function("missing").instructions == 0


class TestBandwidthFeedback:
    def test_external_load_slows_execution(self):
        trace = sequential_trace(512)
        quiet = no_prefetch_hierarchy().run(trace)
        loaded_h = no_prefetch_hierarchy(external_load=lambda now: 2.9)
        loaded = loaded_h.run(trace)
        assert loaded.elapsed_ns > quiet.elapsed_ns
        assert (loaded.total.average_load_to_use_ns
                > quiet.total.average_load_to_use_ns)

    def test_average_bandwidth_positive(self):
        result = no_prefetch_hierarchy().run(sequential_trace(512))
        assert result.average_bandwidth > 0
