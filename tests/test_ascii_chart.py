"""Tests for the ASCII chart helpers."""

import pytest

from repro.telemetry.ascii_chart import bar_chart, line_chart


class TestLineChart:
    def test_extremes_marked(self):
        chart = line_chart({"s": [(0.0, 1.0), (1.0, 2.0)]},
                           width=20, height=6)
        lines = chart.splitlines()
        assert "*" in lines[0]        # max y at the top row
        assert "*" in lines[5]        # min y at the bottom row

    def test_axis_labels_present(self):
        chart = line_chart({"s": [(0.0, 1.0), (1.0, 2.0)]},
                           x_label="util", y_label="ns")
        assert "x: util" in chart
        assert "y: ns" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart({"a": [(0, 0), (1, 1)],
                            "b": [(0, 1), (1, 0)]}, width=20, height=6)
        assert "*" in chart
        assert "+" in chart
        assert "* a" in chart
        assert "+ b" in chart

    def test_y_range_printed(self):
        chart = line_chart({"s": [(0.0, 90.0), (1.0, 480.0)]})
        assert "480" in chart
        assert "90" in chart

    def test_flat_series_does_not_crash(self):
        assert line_chart({"s": [(0.0, 5.0), (1.0, 5.0)]})

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 0)]}, width=2)


class TestBarChart:
    def test_positive_bars_point_right(self):
        chart = bar_chart({"a": 0.5}, width=20)
        bar = chart.splitlines()[0]
        assert "|#" in bar

    def test_negative_bars_point_left(self):
        chart = bar_chart({"a": -0.5}, width=20)
        bar = chart.splitlines()[0]
        assert "#|" in bar

    def test_values_annotated(self):
        chart = bar_chart({"a": 0.123})
        assert "+12.30%" in chart

    def test_relative_lengths(self):
        chart = bar_chart({"big": 1.0, "small": 0.5}, width=40)
        big, small = chart.splitlines()
        assert big.count("#") > small.count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=3)


class TestCLIChartFlag:
    def test_latency_curve_chart(self, capsys):
        from repro.cli import main
        assert main(["latency-curve", "--points", "3", "--hops", "50",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "HW on" in out
        assert "load-to-use ns" in out
