"""Failure injection: Limoncello must stay safe when the environment
misbehaves — dropped telemetry, flaky MSR writes, perturbed state.

The deployed system runs on tens of thousands of machines; partial
failure is the steady state, not the exception.
"""

import random

from repro.core import (
    LimoncelloConfig,
    LimoncelloDaemon,
    MSRPrefetcherActuator,
)
from repro.errors import TelemetryError
from repro.fleet import Fleet
from repro.msr import FaultyMSRFile, INTEL_LIKE_MAP
from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource
from repro.units import SECOND


class TestTelemetryDropouts:
    def test_fleet_with_dropouts_still_controls_prefetchers(self):
        """30% sample loss: the fleet's daemons still disable prefetchers
        on hot sockets and the run completes."""
        fleet = Fleet(machines=8, seed=3, telemetry_dropout=0.3)
        fleet.deploy_hard_limoncello()
        fleet.run(60)
        toggled = sum(socket.toggles for machine in fleet.machines
                      for socket in machine.sockets)
        dropouts = sum(d.report.dropouts for machine in fleet.machines
                       for d in machine.daemons)
        assert dropouts > 0
        assert toggled > 0

    def test_dropout_never_flips_state_by_itself(self):
        """A dropped sample leaves the actuated state untouched."""
        source = ScriptedBandwidthSource([(0.0, 90.0)],
                                         saturation_bandwidth=100.0)
        sampler = PerfBandwidthSampler(source, dropout_rate=0.999,
                                       rng=random.Random(1))
        msrs = FaultyMSRFile(failure_rate=0.0)
        daemon = LimoncelloDaemon(
            sampler, MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP),
            LimoncelloConfig(sustain_duration_ns=0.0))
        for tick in range(50):
            daemon.step(tick * SECOND)
        # Nearly every sample dropped: either never actuated, or actuated
        # on the rare good sample — but dropouts themselves change nothing.
        assert daemon.report.dropouts >= 45
        assert (daemon.report.actuation_attempts
                <= daemon.report.samples)

    def test_total_telemetry_loss_is_inert(self):
        source = ScriptedBandwidthSource([(0.0, 90.0)],
                                         saturation_bandwidth=100.0)

        class DeadSampler:
            def sample(self, now_ns):
                raise TelemetryError("telemetry plane down")

        msrs = FaultyMSRFile(failure_rate=0.0)
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP)
        daemon = LimoncelloDaemon(DeadSampler(), actuator)
        report = daemon.run(30 * SECOND)
        assert report.samples == 0
        assert report.dropouts == 30
        assert INTEL_LIKE_MAP.all_enabled(msrs)  # fail-safe: hardware default


class TestMSRFaults:
    def test_fleet_survives_flaky_wrmsr(self):
        """Transient wrmsr failures delay, but do not prevent, control."""
        fleet = Fleet(machines=6, seed=3)
        # Replace every socket's MSR file with a faulty one before the
        # daemons bind to it.
        for machine in fleet.machines:
            for socket in machine.sockets:
                faulty = FaultyMSRFile(failure_rate=0.4,
                                       rng=random.Random(socket.index))
                socket.msr_map.declare_registers(faulty)
                socket.msrs = faulty
        fleet.deploy_hard_limoncello()
        fleet.run(60)
        failures = sum(d.report.actuation_failures
                       for machine in fleet.machines
                       for d in machine.daemons)
        toggles = sum(socket.toggles for machine in fleet.machines
                      for socket in machine.sockets)
        assert toggles > 0, "control still effective despite faults"

    def test_daemon_reports_give_operators_visibility(self):
        source = ScriptedBandwidthSource([(0.0, 90.0)],
                                         saturation_bandwidth=100.0)
        msrs = FaultyMSRFile(failure_rate=0.9, rng=random.Random(3))
        daemon = LimoncelloDaemon(
            PerfBandwidthSampler(source),
            MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP, retries=1),
            LimoncelloConfig(sustain_duration_ns=0.0))
        daemon.run(40 * SECOND)
        report = daemon.report
        # Failures are counted, not silently swallowed.
        assert report.actuation_failures > 0
        assert report.actuation_attempts >= report.actuation_failures


class TestStalenessAndPerturbation:
    def test_daemon_reconverges_after_operator_interference(self):
        """An operator re-enabling prefetchers mid-flight is detected by
        readback on the next tick and reverted while load stays high."""
        source = ScriptedBandwidthSource([(0.0, 95.0)],
                                         saturation_bandwidth=100.0)
        from repro.msr import MSRFile
        msrs = MSRFile()
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP)
        daemon = LimoncelloDaemon(
            PerfBandwidthSampler(source), actuator,
            LimoncelloConfig(sustain_duration_ns=0.0))
        daemon.step(0.0)
        assert INTEL_LIKE_MAP.all_disabled(msrs)
        for tick in range(1, 20):
            if tick % 3 == 0:
                INTEL_LIKE_MAP.enable_all(msrs)  # interference
            daemon.step(tick * SECOND)
            assert INTEL_LIKE_MAP.all_disabled(msrs)

    def test_controller_survives_absurd_utilization_values(self):
        from repro.core import HardLimoncelloController
        controller = HardLimoncelloController()
        for tick, value in enumerate((0.0, 1e9, -5.0, float(10 ** 6), 0.7)):
            decision = controller.observe(tick * SECOND, value)
            assert decision.state is not None
