"""Tests for the fleet task model."""

import random

import pytest

from repro.errors import ConfigError
from repro.fleet import Task, TaskTemplate, sample_task


def make_task(**overrides):
    params = dict(
        name="t", cores=4.0, base_qps=400.0, bandwidth_demand=20.0,
        memory_boundedness=0.4,
        function_shares={"memcpy": 0.3, "pointer_chase": 0.7},
    )
    params.update(overrides)
    return Task(**params)


class TestValidation:
    def test_shares_normalized(self):
        task = make_task(function_shares={"memcpy": 2.0, "hash": 2.0})
        assert task.function_shares == {"memcpy": 0.5, "hash": 0.5}

    def test_bad_cores(self):
        with pytest.raises(ConfigError):
            make_task(cores=0)

    def test_bad_boundedness(self):
        with pytest.raises(ConfigError):
            make_task(memory_boundedness=1.5)

    def test_empty_shares(self):
        with pytest.raises(ConfigError):
            make_task(function_shares={})


class TestSpeed:
    def test_full_speed_when_unloaded_and_prefetching(self):
        task = make_task()
        assert task.speed(1.0, True, False) == pytest.approx(1.0)

    def test_latency_slows_in_proportion_to_boundedness(self):
        light = make_task(memory_boundedness=0.1)
        heavy = make_task(memory_boundedness=0.6)
        assert light.speed(2.0, True, False) > heavy.speed(2.0, True, False)

    def test_prefetchers_off_adds_penalty(self):
        task = make_task()
        assert task.speed(1.0, False, False) < task.speed(1.0, True, False)

    def test_soft_limoncello_recovers_most_of_penalty(self):
        task = make_task(function_shares={"memcpy": 1.0})
        plain_off = task.speed(1.0, False, False)
        soft_off = task.speed(1.0, False, True)
        on = task.speed(1.0, True, False)
        assert plain_off < soft_off <= on * 1.001
        assert (on - soft_off) < 0.2 * (on - plain_off)

    def test_irregular_task_gains_when_prefetchers_off(self):
        task = make_task(function_shares={"pointer_chase": 1.0})
        assert task.speed(1.0, False, False) >= task.speed(1.0, True, False)


class TestBandwidth:
    def test_prefetchers_add_overfetch_traffic(self):
        task = make_task()
        on = task.offered_bandwidth(1.0, True)
        off = task.offered_bandwidth(1.0, False)
        assert on > off == pytest.approx(20.0)

    def test_bandwidth_scales_with_speed(self):
        task = make_task()
        assert task.offered_bandwidth(0.5, False) \
            == pytest.approx(0.5 * task.offered_bandwidth(1.0, False))

    def test_noise_applies(self):
        task = make_task(noise_sigma=0.5)
        task.resample_noise(random.Random(3))
        assert task.noise != 1.0
        assert task.offered_bandwidth(1.0, False) \
            == pytest.approx(20.0 * task.noise)

    def test_zero_sigma_no_noise(self):
        task = make_task(noise_sigma=0.0)
        task.resample_noise(random.Random(3))
        assert task.noise == 1.0

    def test_estimate_state_dependence(self):
        task = make_task()
        assert task.estimated_bandwidth(True) > task.estimated_bandwidth(False)
        assert task.estimated_bandwidth(False) == pytest.approx(20.0)


class TestSampling:
    def test_sampled_tasks_within_template_ranges(self):
        template = TaskTemplate(name="svc", function_shares={"memcpy": 1.0},
                                cores_range=(2.0, 4.0))
        rng = random.Random(5)
        for _ in range(50):
            task = sample_task(rng, template)
            assert 2.0 <= task.cores <= 4.0
            low, high = template.memory_boundedness_range
            assert low <= task.memory_boundedness <= high
            median, sigma, lo, hi = template.bandwidth_per_core
            assert lo * task.cores <= task.bandwidth_demand <= hi * task.cores

    def test_default_template_uses_fleet_shares(self):
        task = sample_task(random.Random(1))
        assert "memcpy" in task.function_shares
        assert "pointer_chase" in task.function_shares

    def test_names_unique(self):
        rng = random.Random(1)
        names = {sample_task(rng).name for _ in range(20)}
        assert len(names) == 20

    def test_deterministic_given_rng(self):
        a = sample_task(random.Random(9))
        b = sample_task(random.Random(9))
        assert a.cores == b.cores
        assert a.bandwidth_demand == b.bandwidth_demand
