"""The executable abstract: the paper's headline claims, as tests.

Each test corresponds to a sentence in the paper's abstract or
introduction and checks the reproduction delivers its qualitative
content. These are the claims a reader would check first; the per-figure
details live in benchmarks/.
"""

import random

import pytest

from repro.access import AddressSpace
from repro.analysis import measure_latency_curve
from repro.fleet import AblationStudy, RolloutStudy
from repro.memsys import MemoryHierarchy
from repro.workloads import TAX_CATEGORIES, fleetbench_trace
from repro.workloads.functions import FUNCTION_ROSTER


@pytest.fixture(scope="module")
def full_limoncello():
    return AblationStudy(mode="hard+soft", machines=14, epochs=60,
                         warmup_epochs=20, seed=9).run()


@pytest.fixture(scope="module")
def ablated():
    return AblationStudy(mode="off", machines=14, epochs=60,
                         warmup_epochs=20, seed=9).run()


class TestAbstractClaims:
    def test_claim_prefetchers_increase_latency_when_bandwidth_is_scarce(self):
        """'In resource-constrained environments ... traditional methods
        of hardware prefetching can increase memory latency.'"""
        utilizations = (0.1, 0.9)
        on = measure_latency_curve(True, utilizations, probe_hops=200)
        off = measure_latency_curve(False, utilizations, probe_hops=200)
        assert on.latency_at(0.9) > 1.05 * off.latency_at(0.9)
        # ...but not when bandwidth is plentiful.
        assert on.latency_at(0.1) < 1.05 * off.latency_at(0.1)

    def test_claim_throughput_improves(self, full_limoncello):
        """'It improves application throughput by 10%' — direction and
        a meaningful fraction of the magnitude."""
        assert full_limoncello.throughput_change() > 0.01

    def test_claim_memory_latency_reduction(self, full_limoncello):
        """'...due to a 15% reduction in memory latency.'"""
        assert full_limoncello.latency_reduction()["p50"] < -0.02

    def test_claim_minimal_mpki_change_for_targeted_functions(
            self, full_limoncello, ablated):
        """'...while maintaining minimal change in cache miss rate for
        targeted library functions': with Soft Limoncello deployed, the
        targeted functions recover the overwhelming majority of the MPKI
        blowup that plain ablation causes."""
        with_soft = full_limoncello.function_mpki_deltas()
        without = ablated.function_mpki_deltas()
        for name in ("memcpy", "compress", "hash", "serialize"):
            assert with_soft[name] < 0.2 * without[name], name


class TestIntroductionClaims:
    def test_claim_disabling_raises_misses_but_cuts_latency(self, ablated):
        """'Disabling hardware prefetchers increases cache miss rates by
        20% [but] reduces memory latency by 15%.'"""
        mpki = ablated.function_mpki_deltas()
        fleet_mpki_up = any(delta > 0.2 for delta in mpki.values())
        assert fleet_mpki_up
        assert ablated.latency_reduction()["p50"] < -0.03

    def test_claim_average_regression_without_soft(self, ablated):
        """'Disabling hardware prefetchers ... produces an average 5%
        performance drop in our fleet.'"""
        assert -0.15 < ablated.throughput_change() < 0.0

    def test_claim_tax_functions_suffer_most(self, ablated):
        """'Data center tax operations ... suffer the most when hardware
        prefetchers are disabled.'"""
        deltas = ablated.function_cycle_deltas()
        worst = max(deltas, key=deltas.get)
        category = FUNCTION_ROSTER[worst].category
        assert category in TAX_CATEGORIES or worst == "misc_streaming"

    def test_claim_prefetchers_inflate_fleet_bandwidth(self):
        """Table 1's premise at the micro level: enabling prefetchers
        costs double-digit-percent extra DRAM traffic on fleet code."""
        def mix():
            return fleetbench_trace(random.Random(7), AddressSpace())
        on = MemoryHierarchy().run(mix())
        off_hierarchy = MemoryHierarchy()
        off_hierarchy.set_hardware_prefetchers(False)
        off = off_hierarchy.run(mix())
        inflation = on.dram_total_bytes / off.dram_total_bytes - 1
        assert inflation > 0.04

    def test_claim_full_system_beats_either_alone(self, ablated,
                                                  full_limoncello):
        """'Hardware-software collaboration can provide a better
        prefetching solution than either hardware prefetching or software
        prefetching alone.'"""
        # Better than hardware-always-on (the control arm: change > 0).
        assert full_limoncello.throughput_change() > 0
        # Better than no-hardware-prefetching-at-all.
        assert (full_limoncello.throughput_change()
                > ablated.throughput_change())


class TestCapacityClaim:
    def test_claim_limoncello_unlocks_stranded_cpu(self):
        """Section 6 / Figure 19: with the scheduler integration,
        machines reach higher CPU utilization."""
        result = RolloutStudy(machines=12, epochs=50, warmup_epochs=15,
                              seed=5).run()
        assert result.cpu_utilization_gain() > 0
