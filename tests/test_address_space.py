"""Tests for repro.access.address."""

import pytest

from repro.access import AddressSpace


class TestAddressSpace:
    def test_regions_are_disjoint(self):
        space = AddressSpace()
        a = space.allocate(4096)
        b = space.allocate(4096)
        assert b >= a + 4096 + AddressSpace.GUARD

    def test_alignment(self):
        space = AddressSpace(alignment=4096)
        for _ in range(5):
            assert space.allocate(100) % 4096 == 0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().allocate(0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(alignment=100)  # not a multiple of 64

    def test_high_water_mark_advances(self):
        space = AddressSpace()
        before = space.high_water_mark
        space.allocate(1 << 20)
        assert space.high_water_mark > before + (1 << 20)

    def test_base_respected(self):
        space = AddressSpace(base=0x5000_0000)
        assert space.allocate(64) >= 0x5000_0000
