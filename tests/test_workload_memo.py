"""Tests for the content-keyed generated-trace memo."""

import random

import pytest

from repro.access import AddressSpace
from repro.workloads import memo
from repro.workloads.memo import (
    MAX_MEMO_ENTRIES,
    MEMO_ENV,
    clear_trace_memo,
    memoized_fleet_mix,
    memoized_function_trace,
    memoized_trace,
)
from repro.workloads.mixes import fleetbench_trace


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_trace_memo()
    yield
    clear_trace_memo()


class TestMemoizedTrace:
    def test_same_key_same_object(self):
        calls = []

        def build():
            calls.append(1)
            return fleetbench_trace(random.Random(1), AddressSpace(),
                                    scale=0.02)

        first = memoized_trace(("k", 1), build)
        second = memoized_trace(("k", 1), build)
        assert first is second
        assert len(calls) == 1

    def test_distinct_keys_distinct_builds(self):
        first = memoized_trace(
            ("k", 1), lambda: fleetbench_trace(random.Random(1),
                                               AddressSpace(), scale=0.02))
        second = memoized_trace(
            ("k", 2), lambda: fleetbench_trace(random.Random(2),
                                               AddressSpace(), scale=0.02))
        assert first is not second

    def test_env_disables(self, monkeypatch):
        monkeypatch.setenv(MEMO_ENV, "0")
        build = lambda: fleetbench_trace(random.Random(1), AddressSpace(),
                                         scale=0.02)
        assert memoized_trace(("k", 1), build) \
            is not memoized_trace(("k", 1), build)

    def test_bounded(self):
        from repro.access import Trace
        for i in range(MAX_MEMO_ENTRIES + 5):
            memoized_trace(("bound", i), Trace)
        assert len(memo._memo) == MAX_MEMO_ENTRIES

    def test_hit_refreshes_recency(self):
        """Eviction is LRU, not FIFO: a re-touched entry must survive a
        sweep that cycles through more than MAX_MEMO_ENTRIES other keys."""
        from repro.access import Trace
        hot = memoized_trace(("hot",), Trace)
        for i in range(MAX_MEMO_ENTRIES - 1):
            memoized_trace(("cold", i), Trace)
        # The memo is now full with ("hot",) as the oldest insertion.
        # Touch it, then insert one more key: the eviction must take the
        # oldest *cold* entry, not the just-touched hot one.
        assert memoized_trace(("hot",), Trace) is hot
        memoized_trace(("cold", MAX_MEMO_ENTRIES), Trace)
        assert ("hot",) in memo._memo
        assert ("cold", 0) not in memo._memo
        assert memoized_trace(("hot",), Trace) is hot

    def test_lru_order_tracks_hits(self):
        from repro.access import Trace
        for key in ("a", "b", "c"):
            memoized_trace((key,), Trace)
        memoized_trace(("a",), Trace)  # hit: "a" becomes most recent
        assert list(memo._memo) == [("b",), ("c",), ("a",)]


class TestWorkloadMemos:
    def test_fleet_mix_repeat_is_same_object(self):
        assert memoized_fleet_mix(3, 0.02) is memoized_fleet_mix(3, 0.02)

    def test_fleet_mix_matches_fresh_generation(self):
        memoized = memoized_fleet_mix(3, 0.02)
        fresh = fleetbench_trace(random.Random(3), AddressSpace(),
                                 scale=0.02)
        assert list(memoized) == list(fresh)

    def test_function_trace_repeat_is_same_object(self):
        assert memoized_function_trace("memcpy", 5, 0.05) \
            is memoized_function_trace("memcpy", 5, 0.05)

    def test_function_trace_matches_fresh_generation(self):
        from repro.workloads.functions import FUNCTION_ROSTER
        memoized = memoized_function_trace("memcpy", 5, 0.05)
        fresh = FUNCTION_ROSTER["memcpy"].trace(random.Random(5),
                                                AddressSpace(), scale=0.05)
        assert list(memoized) == list(fresh)

    def test_shared_object_shares_compiled_lowering(self):
        trace = memoized_fleet_mix(3, 0.02)
        compiled = trace.compile()
        assert memoized_fleet_mix(3, 0.02).compile() is compiled
