"""Tests for repro.telemetry.window."""

import pytest

from repro.telemetry import SlidingWindow


class TestSlidingWindow:
    def test_sum_within_window(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        window.add(5.0, 7.0)
        assert window.total() == 12.0

    def test_old_entries_evicted(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        window.add(11.0, 7.0)
        assert window.total() == 7.0

    def test_boundary_is_exclusive(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        window.add(10.0, 1.0)
        # Entry at t=0 is exactly span old -> evicted.
        assert window.total() == 1.0

    def test_rate(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 30.0)
        assert window.rate() == pytest.approx(3.0)

    def test_advance_evicts(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        window.advance(100.0)
        assert window.total() == 0.0
        assert len(window) == 0

    def test_total_with_now_evicts(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        assert window.total(now=50.0) == 0.0

    def test_rejects_time_regression(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(5.0, 1.0)
        with pytest.raises(ValueError):
            window.add(4.0, 1.0)

    def test_bad_span(self):
        with pytest.raises(ValueError):
            SlidingWindow(span_ns=0.0)

    def test_clear(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        window.clear()
        assert window.total() == 0.0

    def test_no_drift_over_long_runs(self):
        # Regression for the float-drift bug: millions of add/evict
        # cycles with values of very different magnitudes used to leave
        # a residue in the running sum (sometimes negative). The
        # compensated sum plus periodic recomputation keeps the window
        # exact to within float tolerance of a fresh sum.
        window = SlidingWindow(span_ns=100.0)
        t = 0.0
        for i in range(200_000):
            t += 0.7
            window.add(t, 1e9 if i % 3 == 0 else 1e-3)
        expected = sum(value for _, value in window._points)
        assert window.total() == pytest.approx(expected, rel=1e-12)

    def test_total_never_negative_after_heavy_eviction(self):
        window = SlidingWindow(span_ns=10.0)
        t = 0.0
        for i in range(50_000):
            t += 1.0
            window.add(t, 1e12 if i % 2 == 0 else 1e-6)
        window.advance(t + 1e6)
        assert len(window) == 0
        assert window.total() == 0.0
        assert window.rate() == 0.0


class TestBoundarySemantics:
    """The window is half-open ``(t - span, t]``: a point exactly
    ``span_ns`` old is out — aligned with the controller's inclusive
    sustain expiry (exactly-S has elapsed) and pinned because the DRAM
    model's inlined eviction loops and the batched engine encode the
    same ``<=`` comparison."""

    def test_point_exactly_span_old_is_evicted_on_add(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(5.0, 3.0)
        window.add(15.0, 1.0)  # first point is now exactly span_ns old
        assert window.total() == 1.0
        assert len(window) == 1

    def test_point_exactly_span_old_is_evicted_on_advance(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(5.0, 3.0)
        window.advance(15.0)
        assert window.total() == 0.0
        assert len(window) == 0

    def test_point_just_inside_span_is_retained(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(5.0, 3.0)
        window.advance(15.0 - 1e-9)
        assert window.total() == 3.0
        assert len(window) == 1

    def test_total_with_now_applies_same_boundary(self):
        window = SlidingWindow(span_ns=10.0)
        window.add(0.0, 5.0)
        assert window.total(now=10.0 - 1e-9) == 5.0
        assert window.total(now=10.0) == 0.0

    def test_matches_controller_sustain_boundary(self):
        # The controller flips state when a crossing has lasted
        # *exactly* sustain_duration_ns; the window must agree that an
        # interval of exactly S has elapsed (the point is gone).
        from repro.core import LimoncelloConfig
        from repro.core.controller import HardLimoncelloController

        config = LimoncelloConfig()
        sustain = config.sustain_duration_ns
        controller = HardLimoncelloController(config)
        controller.observe(0.0, 0.99)            # enter OVERLOADED at t=0
        decision = controller.observe(float(sustain), 0.99)
        assert decision.prefetchers_enabled is False  # exactly-S flips

        window = SlidingWindow(span_ns=float(sustain))
        window.add(0.0, 1.0)
        window.advance(float(sustain))
        assert len(window) == 0                  # exactly-S evicts
