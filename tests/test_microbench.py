"""Tests for the memcpy microbenchmark and the fleet-mix load test."""

import pytest

from repro.core import PrefetchDescriptor
from repro.errors import ConfigError
from repro.microbench import (
    FleetMixLoadTest,
    MemcpyMicrobenchmark,
    PAPER_SIZES,
)
from repro.units import KB


SIZES = (256, 4 * KB, 64 * KB)


@pytest.fixture(scope="module")
def bench():
    return MemcpyMicrobenchmark(sizes=SIZES, bytes_per_point=64 * KB)


def descriptor(distance=512, degree=256, clamp=False, gate=0):
    return PrefetchDescriptor("memcpy", distance_bytes=distance,
                              degree_bytes=degree, min_size_bytes=gate,
                              clamp_to_stream=clamp)


class TestMicrobenchmark:
    def test_paper_sizes_span_the_figure(self):
        assert min(PAPER_SIZES) <= 256
        assert max(PAPER_SIZES) >= 1000 * KB

    def test_deterministic(self, bench):
        a = bench.run(None)
        b = bench.run(None)
        assert a.elapsed_by_size == b.elapsed_by_size

    def test_prefetching_speeds_up_large_copies(self, bench):
        speedups = bench.speedup(descriptor())
        assert speedups[64 * KB] > 0.3

    def test_unclamped_aggressive_prefetch_hurts_small_copies(self, bench):
        """Figure 15b's left side: big degree, tiny copy, negative."""
        speedups = bench.speedup(descriptor(degree=2048))
        assert speedups[256] < -0.2

    def test_size_gate_removes_small_copy_regression(self, bench):
        """Section 4.3: conditioning on larger call sizes fixes the
        regression while keeping the large-copy win."""
        gated = bench.speedup(descriptor(degree=2048, clamp=True,
                                         gate=4 * KB))
        assert gated[256] == pytest.approx(0.0, abs=0.02)
        assert gated[64 * KB] > 0.3

    def test_longer_distance_helps_large_copies(self, bench):
        near = bench.speedup(descriptor(distance=64))
        far = bench.speedup(descriptor(distance=1024))
        assert far[64 * KB] > near[64 * KB]

    def test_mean_speedup_scalar(self, bench):
        assert isinstance(bench.mean_speedup(descriptor()), float)

    def test_state_comparison_figure15c(self):
        """-HW,-SW is the slowest; adding SW recovers most of it; SW on
        top of HW is a small perturbation."""
        bench = MemcpyMicrobenchmark(sizes=(4 * KB, 64 * KB),
                                     bytes_per_point=64 * KB)
        states = bench.prefetcher_state_comparison(
            descriptor(clamp=True, gate=1 * KB))
        assert states["-HW,-SW"] < 0
        assert states["-HW,+SW"] > states["-HW,-SW"]
        assert abs(states["+HW,+SW"]) < abs(states["-HW,-SW"])

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemcpyMicrobenchmark(sizes=())
        with pytest.raises(ConfigError):
            MemcpyMicrobenchmark(bytes_per_point=0)
        with pytest.raises(ConfigError):
            MemcpyMicrobenchmark(background_utilization=2.0)


class TestLoadTest:
    def test_good_descriptor_passes(self):
        loadtest = FleetMixLoadTest(scale=1.0)
        good = PrefetchDescriptor("memcpy", distance_bytes=512,
                                  degree_bytes=256, min_size_bytes=2 * KB)
        assert loadtest.speedup(good) > 0.01

    def test_wasteful_descriptor_does_worse_than_good_one(self):
        loadtest = FleetMixLoadTest(scale=0.4)
        good = PrefetchDescriptor("memcpy", distance_bytes=512,
                                  degree_bytes=256, min_size_bytes=2 * KB)
        wasteful = PrefetchDescriptor("memcpy", distance_bytes=4096,
                                      degree_bytes=4096,
                                      clamp_to_stream=False)
        assert loadtest.speedup(wasteful) < loadtest.speedup(good)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FleetMixLoadTest(background_utilization=2.0)
        with pytest.raises(ConfigError):
            FleetMixLoadTest(scale=0)
