"""Tests for ObsSession, run-directory layout, and the manifest."""

import json

import pytest

from repro.errors import TraceError
from repro.obs import (
    EVENTS_NAME,
    MANIFEST_NAME,
    ObsSession,
    manifest_run_digest,
    read_events_jsonl,
    read_manifest,
)
from repro.obs.session import OBS_ENV_VAR, resolve_obs_dir


class TestResolveObsDir:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV_VAR, raising=False)
        assert resolve_obs_dir(None) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "/tmp/obs")
        assert resolve_obs_dir(None) == "/tmp/obs"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "/tmp/env")
        assert resolve_obs_dir("/tmp/arg") == "/tmp/arg"

    def test_empty_string_disables_despite_env(self, monkeypatch):
        # The chaos study's baseline twin passes "" to stay dark even
        # when $REPRO_OBS_DIR is exported.
        monkeypatch.setenv(OBS_ENV_VAR, "/tmp/env")
        assert resolve_obs_dir("") is None

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "   ")
        assert resolve_obs_dir(None) is None


def _run_session(out_dir, study="ablation", workers=1):
    """A tiny but complete session: one shard plus study-level events."""
    session = ObsSession(out_dir, study, workers=workers)
    session.event("study-start", study=study)
    tracer = session.shard_tracer()
    tracer.event("shard-start", 0.0, index=0, machines=2, seed=7)
    tracer.event("shard-finish", 9.0, index=0, epochs=4)
    with session.phase("execute"):
        pass
    session.add_shard(0, tracer.events, wall_s=0.25)
    session.event("study-finish", t_ns=9.0, study=study)
    return session.finalize({"machines": 2, "seed": 7},
                            shard_seeds=[7], fault_plan=None)


class TestObsSession:
    def test_writes_run_directory(self, tmp_path):
        run_dir = _run_session(tmp_path / "run")
        assert (run_dir / EVENTS_NAME).is_file()
        assert (run_dir / MANIFEST_NAME).is_file()

    def test_events_validate_and_carry_seq_and_shard(self, tmp_path):
        run_dir = _run_session(tmp_path / "run")
        events = read_events_jsonl(run_dir / EVENTS_NAME)
        assert [event["seq"] for event in events] == [0, 1, 2, 3]
        assert [event["shard"] for event in events] == [None, 0, 0, None]
        assert [event["kind"] for event in events] == [
            "study-start", "shard-start", "shard-finish", "study-finish"]

    def test_manifest_blocks(self, tmp_path):
        run_dir = _run_session(tmp_path / "run", workers=3)
        manifest = read_manifest(run_dir)
        run = manifest["run"]
        assert run["study"] == "ablation"
        assert run["material"] == {"machines": 2, "seed": 7}
        assert run["shard_seeds"] == [7]
        assert run["shards"] == 1
        assert run["engine"] in ("compiled", "interpreter")
        assert run["events"] == 4
        execution = manifest["execution"]
        assert execution["workers"] == 3
        assert execution["wall_s"] >= 0.0
        assert [phase["name"] for phase in execution["phases"]] == ["execute"]
        assert execution["shard_wall_s"] == {"0": 0.25}
        assert execution["cache"] == "off"

    def test_events_digest_matches_log(self, tmp_path):
        import hashlib

        run_dir = _run_session(tmp_path / "run")
        manifest = read_manifest(run_dir)
        digest = hashlib.sha256(
            (run_dir / EVENTS_NAME).read_bytes()).hexdigest()
        assert manifest["run"]["events_digest"] == digest

    def test_run_digest_ignores_execution_overlay(self, tmp_path):
        first = _run_session(tmp_path / "a", workers=1)
        second = _run_session(tmp_path / "b", workers=8)
        assert (manifest_run_digest(read_manifest(first))
                == manifest_run_digest(read_manifest(second)))

    def test_run_digest_sees_material_changes(self, tmp_path):
        session = ObsSession(tmp_path / "c", "ablation")
        session.event("study-start", study="ablation")
        other = session.finalize({"machines": 99, "seed": 1},
                                 shard_seeds=[1])
        base = _run_session(tmp_path / "d")
        assert (manifest_run_digest(read_manifest(other))
                != manifest_run_digest(read_manifest(base)))

    def test_cache_probe_hit(self, tmp_path):
        session = ObsSession(tmp_path / "run", "ablation")
        session.cache_probe(True, "k" * 64)
        run_dir = session.finalize({}, shard_seeds=[])
        events = read_events_jsonl(run_dir / EVENTS_NAME)
        assert events[0]["kind"] == "cache-hit"
        assert read_manifest(run_dir)["execution"]["cache"] == "hit"

    def test_cache_probe_off(self, tmp_path):
        session = ObsSession(tmp_path / "run", "ablation")
        session.cache_probe(None, "")
        run_dir = session.finalize({}, shard_seeds=[])
        assert read_events_jsonl(run_dir / EVENTS_NAME) == []
        assert read_manifest(run_dir)["execution"]["cache"] == "off"


class TestReadManifest:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_manifest(tmp_path)

    def test_invalid_json(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(TraceError, match="invalid JSON"):
            read_manifest(tmp_path)

    def test_wrong_schema(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"schema": 99}))
        with pytest.raises(TraceError, match="schema"):
            read_manifest(tmp_path)

    def test_missing_blocks(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"schema": 1, "run": {}}))
        with pytest.raises(TraceError, match="execution"):
            read_manifest(tmp_path)
