"""Tests for the access-pattern analyzer and descriptor proposer (§8.2),
plus curve-derived thresholds (§3)."""

import random

import pytest

from repro.access import AddressSpace, MemoryAccess, Trace
from repro.analysis import (
    analyze_trace,
    measure_latency_curve,
    propose_descriptors,
)
from repro.analysis.latency_curves import LatencyCurve, LatencyPoint
from repro.analysis.thresholds import derive_thresholds_from_curve
from repro.errors import ConfigError
from repro.units import KB
from repro.workloads import (
    hashing_trace,
    memcpy_trace,
    pointer_chase_trace,
    serialize_trace,
)


@pytest.fixture
def space():
    return AddressSpace()


class TestAnalyzeTrace:
    def test_memcpy_recognized_as_streaming(self):
        patterns = analyze_trace(memcpy_trace(0x10000, 0x90000, 64 * KB))
        pattern = patterns["memcpy"]
        assert pattern.is_streaming
        assert pattern.sequential_fraction > 0.9
        assert pattern.dominant_stride == 64
        assert pattern.stream_p50_bytes >= 32 * KB

    def test_pointer_chase_recognized_as_irregular(self, space):
        patterns = analyze_trace(pointer_chase_trace(
            space, 64 << 20, 500, rng=random.Random(1)))
        pattern = patterns["pointer_chase"]
        assert not pattern.is_streaming
        assert pattern.sequential_fraction < 0.05
        assert pattern.stream_count == 0

    def test_sub_line_strides_count_as_sequential(self, space):
        patterns = analyze_trace(serialize_trace(space, 8 * KB))
        assert patterns["serialize"].is_streaming

    def test_working_set(self, space):
        patterns = analyze_trace(hashing_trace(space, 8 * KB))
        assert patterns["hash"].working_set_lines == 8 * KB // 64

    def test_interleaved_functions_separated(self, space):
        trace = (memcpy_trace(0x10000, 0x90000, 8 * KB)
                 + pointer_chase_trace(space, 1 << 24, 100,
                                       rng=random.Random(2)))
        patterns = analyze_trace(trace)
        assert patterns["memcpy"].is_streaming
        assert not patterns["pointer_chase"].is_streaming

    def test_unattributed_records_ignored(self):
        trace = Trace([MemoryAccess(address=0x1000)])
        assert analyze_trace(trace) == {}


class TestProposeDescriptors:
    def test_targets_only_streaming_functions(self, space):
        trace = (memcpy_trace(0x10000, 0x90000, 64 * KB)
                 + pointer_chase_trace(space, 64 << 20, 500,
                                       rng=random.Random(1)))
        proposals = propose_descriptors(analyze_trace(trace),
                                        min_accesses=10)
        functions = {d.function for d in proposals}
        assert "memcpy" in functions
        assert "pointer_chase" not in functions

    def test_cold_functions_skipped(self):
        trace = memcpy_trace(0x10000, 0x90000, 1 * KB)
        proposals = propose_descriptors(analyze_trace(trace),
                                        min_accesses=1000)
        assert proposals == []

    def test_proposals_are_valid_descriptors(self, space):
        trace = memcpy_trace(0x10000, 0x90000, 64 * KB) \
            + hashing_trace(space, 32 * KB)
        for descriptor in propose_descriptors(analyze_trace(trace),
                                              min_accesses=10):
            assert descriptor.distance_bytes % 64 == 0
            assert descriptor.degree_bytes % 64 == 0
            assert descriptor.clamp_to_stream

    def test_candidate_budget(self, space):
        trace = Trace()
        for index in range(12):
            trace = trace + memcpy_trace(
                0x10000 + index * (1 << 20),
                0x90000 + index * (1 << 20), 16 * KB,
                function=f"fn{index}")
        proposals = propose_descriptors(analyze_trace(trace),
                                        min_accesses=10, max_candidates=3)
        assert len(proposals) == 3

    def test_proposals_actually_help(self):
        """End to end: analyzer proposals speed up the workload they were
        derived from (the §8.2 promise: less guesswork)."""
        from repro.core import SoftwarePrefetchInjector
        from repro.memsys import MemoryHierarchy, PrefetcherBank

        trace = memcpy_trace(0x10_0000, 0x90_0000, 128 * KB)
        proposals = propose_descriptors(analyze_trace(trace),
                                        min_accesses=10)
        assert proposals
        injected = SoftwarePrefetchInjector(proposals).inject(trace)
        plain = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(trace)
        tuned = MemoryHierarchy(prefetchers=PrefetcherBank([])).run(injected)
        assert tuned.elapsed_ns < plain.elapsed_ns


class TestDerivedThresholds:
    def synthetic_curve(self):
        points = [LatencyPoint(u / 10, 90.0 * (1 + (u / 10) ** 3 * 3))
                  for u in range(11)]
        return LatencyCurve(True, tuple(points))

    def test_upper_at_knee(self):
        config = derive_thresholds_from_curve(self.synthetic_curve(),
                                              knee_ratio=1.5)
        # 1.5x unloaded is crossed between u=0.5 and u=0.6.
        assert 0.5 <= config.upper_threshold <= 0.7
        assert config.lower_threshold == pytest.approx(
            config.upper_threshold - 0.2)

    def test_higher_knee_ratio_raises_thresholds(self):
        low = derive_thresholds_from_curve(self.synthetic_curve(),
                                           knee_ratio=1.3)
        high = derive_thresholds_from_curve(self.synthetic_curve(),
                                            knee_ratio=2.5)
        assert high.upper_threshold > low.upper_threshold

    def test_measured_curve_yields_valid_config(self):
        curve = measure_latency_curve(True, [x / 10 for x in range(11)],
                                      probe_hops=80)
        config = derive_thresholds_from_curve(curve)
        assert 0.0 < config.lower_threshold < config.upper_threshold <= 0.95

    def test_flat_curve_rejected(self):
        flat = LatencyCurve(True, tuple(
            LatencyPoint(u / 10, 90.0) for u in range(11)))
        with pytest.raises(ConfigError):
            derive_thresholds_from_curve(flat)

    def test_validation(self):
        with pytest.raises(ConfigError):
            derive_thresholds_from_curve(self.synthetic_curve(),
                                         knee_ratio=1.0)
        with pytest.raises(ConfigError):
            derive_thresholds_from_curve(self.synthetic_curve(),
                                         hysteresis_gap=0.0)
        with pytest.raises(ConfigError):
            derive_thresholds_from_curve(LatencyCurve(True, ()))
