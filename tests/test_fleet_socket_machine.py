"""Tests for SimulatedSocket and Machine."""

import random

import pytest

from repro.core import LimoncelloConfig
from repro.errors import ConfigError
from repro.fleet import Machine, PLATFORM_1, SimulatedSocket, Task
from repro.units import SECOND


def heavy_task(name="t", cores=8.0, bandwidth=60.0):
    return Task(name=name, cores=cores, base_qps=100.0 * cores,
                bandwidth_demand=bandwidth, memory_boundedness=0.4,
                function_shares={"memcpy": 0.3, "pointer_chase": 0.7},
                noise_sigma=0.0)


class TestSocketBasics:
    def test_starts_with_prefetchers_on(self):
        socket = SimulatedSocket(PLATFORM_1)
        assert socket.hw_prefetchers_on

    def test_force_prefetchers_via_msrs(self):
        socket = SimulatedSocket(PLATFORM_1)
        socket.force_prefetchers(False)
        assert not socket.hw_prefetchers_on
        assert socket.msr_map.all_disabled(socket.msrs)

    def test_qualified_saturation_below_capacity(self):
        socket = SimulatedSocket(PLATFORM_1)
        assert socket.saturation_bandwidth < socket.raw_capacity

    def test_core_accounting(self):
        socket = SimulatedSocket(PLATFORM_1)
        socket.add_task(heavy_task(cores=8.0))
        assert socket.cores_used == 8.0
        assert socket.cores_free == socket.cores - 8.0

    def test_overcommit_rejected(self):
        socket = SimulatedSocket(PLATFORM_1)
        with pytest.raises(ConfigError):
            socket.add_task(heavy_task(cores=socket.cores + 1.0))

    def test_remove_task(self):
        socket = SimulatedSocket(PLATFORM_1)
        task = heavy_task()
        socket.add_task(task)
        socket.remove_task(task)
        assert socket.cores_used == 0


class TestSocketEpochs:
    def test_empty_socket_idles(self):
        socket = SimulatedSocket(PLATFORM_1)
        epoch = socket.step(0.0)
        assert epoch.bandwidth == 0.0
        assert epoch.utilization == 0.0
        assert epoch.qps == 0.0

    def test_fixed_point_converges(self):
        """Two consecutive epochs with identical inputs must agree (the
        damped iteration has settled)."""
        socket = SimulatedSocket(PLATFORM_1)
        for i in range(4):
            socket.add_task(heavy_task(name=f"t{i}", cores=8.0,
                                       bandwidth=35.0))
        first = socket.step(0.0)
        second = socket.step(1.0 * SECOND)
        assert second.bandwidth == pytest.approx(first.bandwidth, rel=0.02)

    def test_latency_grows_with_load(self):
        light = SimulatedSocket(PLATFORM_1)
        light.add_task(heavy_task(bandwidth=10.0))
        heavy = SimulatedSocket(PLATFORM_1)
        for i in range(5):
            heavy.add_task(heavy_task(name=f"h{i}", cores=8.0,
                                      bandwidth=35.0))
        assert heavy.step(0.0).latency_ns > light.step(0.0).latency_ns

    def test_disabling_prefetchers_cuts_bandwidth(self):
        def loaded_socket():
            socket = SimulatedSocket(PLATFORM_1)
            for i in range(4):
                socket.add_task(heavy_task(name=f"t{i}", bandwidth=30.0))
            return socket

        on = loaded_socket().step(0.0)
        off_socket = loaded_socket()
        off_socket.force_prefetchers(False)
        off = off_socket.step(0.0)
        assert off.bandwidth < on.bandwidth
        assert off.latency_ns <= on.latency_ns

    def test_soft_limoncello_recovers_qps_when_off(self):
        def arm(soft):
            socket = SimulatedSocket(PLATFORM_1)
            socket.add_task(heavy_task(bandwidth=10.0))
            socket.force_prefetchers(False)
            socket.soft_deployed = soft
            return socket.step(0.0).qps

        assert arm(soft=True) > arm(soft=False)

    def test_demand_factor_scales_bandwidth(self):
        socket = SimulatedSocket(PLATFORM_1)
        socket.add_task(heavy_task(bandwidth=10.0))
        quiet = socket.step(0.0, demand_factor=1.0)
        loud = socket.step(1.0, demand_factor=1.5)
        assert loud.bandwidth > quiet.bandwidth

    def test_memory_bandwidth_reports_last_epoch(self):
        socket = SimulatedSocket(PLATFORM_1)
        socket.add_task(heavy_task(bandwidth=10.0))
        epoch = socket.step(0.0)
        assert socket.memory_bandwidth(1.0) == pytest.approx(epoch.bandwidth)

    def test_dram_config_saturation_must_match(self):
        from repro.memsys import DRAMConfig
        with pytest.raises(ConfigError):
            SimulatedSocket(PLATFORM_1, dram=DRAMConfig(
                saturation_bandwidth=1.0))


class TestMachine:
    def test_cpu_utilization(self):
        machine = Machine("m", PLATFORM_1, sockets=2)
        machine.sockets[0].add_task(heavy_task(cores=24.0))
        assert machine.cpu_utilization == pytest.approx(
            24.0 / machine.total_cores)

    def test_step_returns_per_socket_epochs(self):
        machine = Machine("m", PLATFORM_1, sockets=2)
        epochs = machine.step(0.0)
        assert len(epochs) == 2

    def test_hard_limoncello_daemons_per_socket(self):
        machine = Machine("m", PLATFORM_1, sockets=2)
        machine.deploy_hard_limoncello(LimoncelloConfig(
            sample_period_ns=SECOND, sustain_duration_ns=2 * SECOND))
        assert len(machine.daemons) == 2
        machine.deploy_hard_limoncello()  # idempotent
        assert len(machine.daemons) == 2

    def test_daemon_disables_prefetchers_under_load(self):
        machine = Machine("m", PLATFORM_1, sockets=1,
                          demand_noise_sigma=0.0)
        socket = machine.sockets[0]
        for i in range(5):
            socket.add_task(heavy_task(name=f"t{i}", cores=8.0,
                                       bandwidth=40.0))
        machine.deploy_hard_limoncello(LimoncelloConfig(
            sample_period_ns=SECOND, sustain_duration_ns=2 * SECOND))
        rng = random.Random(0)
        for tick in range(8):
            machine.step(tick * SECOND, SECOND, rng=rng)
        assert not socket.hw_prefetchers_on

    def test_soft_deployment_flags_sockets(self):
        machine = Machine("m", PLATFORM_1)
        machine.deploy_soft_limoncello()
        assert all(s.soft_deployed for s in machine.sockets)

    def test_zero_sockets_rejected(self):
        with pytest.raises(ConfigError):
            Machine("m", PLATFORM_1, sockets=0)
