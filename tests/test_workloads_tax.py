"""Tests for data-center-tax trace generators."""

import random

import pytest

from repro.access import AccessKind, AddressSpace
from repro.units import CACHE_LINE_BYTES
from repro.workloads import (
    FunctionCategory,
    category_of_function,
    compress_trace,
    crc32_trace,
    decompress_trace,
    deserialize_trace,
    hashing_trace,
    memcpy_call_trace,
    memcpy_trace,
    memmove_trace,
    memset_trace,
    serialize_trace,
)


@pytest.fixture
def space():
    return AddressSpace()


class TestMemcpy:
    def test_loads_and_stores_interleaved(self):
        trace = memcpy_trace(src=0x10000, dst=0x20000, size=256)
        loads = [r for r in trace if r.kind is AccessKind.LOAD]
        stores = [r for r in trace if r.kind is AccessKind.STORE]
        assert len(loads) == 4
        assert len(stores) == 4
        assert [r.address for r in loads] == [0x10000 + i * 64 for i in range(4)]
        assert [r.address for r in stores] == [0x20000 + i * 64 for i in range(4)]

    def test_sub_line_copy_is_one_line(self):
        trace = memcpy_trace(src=0, dst=0x1000, size=8)
        assert len(trace) == 2

    def test_function_attribution(self):
        trace = memcpy_trace(src=0, dst=0x1000, size=64)
        assert all(r.function == "memcpy" for r in trace)

    def test_stable_pcs(self):
        trace = memcpy_trace(src=0, dst=0x1000, size=256)
        load_pcs = {r.pc for r in trace if r.kind is AccessKind.LOAD}
        assert len(load_pcs) == 1

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            memcpy_trace(0, 0x1000, 0)

    def test_call_trace_fresh_buffers(self, space):
        trace = memcpy_call_trace(space, [128, 128])
        addresses = [r.address for r in trace]
        # Four distinct buffers: 2 srcs + 2 dsts, none overlapping.
        assert len({a & ~0xFFF for a in addresses}) >= 4

    def test_call_trace_gap_applied(self, space):
        trace = memcpy_call_trace(space, [64], gap_between_calls=100)
        assert trace[0].gap_cycles >= 100


class TestMemmove:
    def test_non_overlapping_is_memcpy_shaped(self):
        trace = memmove_trace(src=0x10000, dst=0x90000, size=128)
        assert trace[0].function == "memmove"
        loads = [r.address for r in trace if r.kind is AccessKind.LOAD]
        assert loads == sorted(loads)

    def test_overlapping_walks_backwards(self):
        trace = memmove_trace(src=0x10000, dst=0x10040, size=4096)
        loads = [r.address for r in trace if r.kind is AccessKind.LOAD]
        assert loads == sorted(loads, reverse=True)


class TestMemset:
    def test_all_stores(self):
        trace = memset_trace(dst=0x1000, size=256)
        assert all(r.kind is AccessKind.STORE for r in trace)
        assert len(trace) == 4


class TestCompression:
    def test_output_smaller_than_input(self, space):
        trace = compress_trace(space, input_size=64 * 1024,
                               rng=random.Random(0), ratio=0.5)
        stores = [r for r in trace if r.kind is AccessKind.STORE]
        loads = [r for r in trace if r.kind is AccessKind.LOAD
                 and r.size == CACHE_LINE_BYTES]
        assert len(stores) < len(loads)
        assert len(stores) >= len(loads) * 0.4

    def test_input_stream_sequential(self, space):
        trace = compress_trace(space, input_size=4096, rng=random.Random(0))
        stream = [r.address for r in trace
                  if r.kind is AccessKind.LOAD and r.size == CACHE_LINE_BYTES]
        assert stream == sorted(stream)

    def test_probes_stay_within_window(self, space):
        trace = compress_trace(space, input_size=256 * 1024,
                               rng=random.Random(1), window_bytes=32 * 1024)
        lines = [r for r in trace if r.kind is AccessKind.LOAD]
        big = [r.address for r in lines if r.size == CACHE_LINE_BYTES]
        base = min(big)
        for record in lines:
            if record.size == 8:  # probe
                assert record.address >= base

    def test_decompress_output_larger(self, space):
        trace = decompress_trace(space, output_size=64 * 1024,
                                 rng=random.Random(0), ratio=0.5)
        stores = [r for r in trace if r.kind is AccessKind.STORE]
        loads = [r for r in trace if r.kind is AccessKind.LOAD]
        assert len(stores) > len(loads)

    def test_bad_ratio(self, space):
        with pytest.raises(ValueError):
            compress_trace(space, 4096, ratio=0.0)


class TestHashing:
    def test_pure_sequential_reads(self, space):
        trace = hashing_trace(space, size=8192)
        assert all(r.kind is AccessKind.LOAD for r in trace)
        addresses = [r.address for r in trace]
        assert addresses == sorted(addresses)
        assert len(trace) == 128

    def test_crc32_low_gap(self, space):
        trace = crc32_trace(space, size=4096)
        assert all(r.function == "crc32" for r in trace)
        assert trace[0].gap_cycles < hashing_trace(space, 4096)[0].gap_cycles


class TestSerialization:
    def test_serialize_reads_and_writes(self, space):
        trace = serialize_trace(space, message_bytes=4096)
        kinds = {r.kind for r in trace}
        assert kinds == {AccessKind.LOAD, AccessKind.STORE}

    def test_serialize_output_sequential(self, space):
        trace = serialize_trace(space, message_bytes=4096)
        stores = [r.address for r in trace if r.kind is AccessKind.STORE]
        assert stores == sorted(stores)
        deltas = {b - a for a, b in zip(stores, stores[1:])}
        assert deltas == {CACHE_LINE_BYTES}

    def test_deserialize_input_sequential(self, space):
        trace = deserialize_trace(space, message_bytes=4096)
        loads = [r.address for r in trace if r.kind is AccessKind.LOAD]
        assert loads == sorted(loads)

    def test_bad_sizes(self, space):
        with pytest.raises(ValueError):
            serialize_trace(space, 0)
        with pytest.raises(ValueError):
            deserialize_trace(space, 100, field_stride=0)


class TestCategories:
    @pytest.mark.parametrize("name,category", [
        ("memcpy", FunctionCategory.DATA_MOVEMENT),
        ("memset", FunctionCategory.DATA_MOVEMENT),
        ("compress", FunctionCategory.COMPRESSION),
        ("crc32", FunctionCategory.HASHING),
        ("serialize", FunctionCategory.DATA_TRANSMISSION),
        ("no_such_function", FunctionCategory.NON_TAX),
    ])
    def test_category_lookup(self, name, category):
        assert category_of_function(name) is category
