"""Property-based tests (hypothesis) for the substrate data structures."""

import numpy as np
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.memsys import CacheConfig, DRAMConfig, DRAMModel, SetAssociativeCache
from repro.memsys.stats import FunctionStats
from repro.msr import INTEL_LIKE_MAP, MSRFile
from repro.telemetry import SlidingWindow, percentile

lines = st.integers(min_value=0, max_value=1 << 20).map(lambda x: x * 64)


class TestCacheProperties:
    @given(addresses=st.lists(lines, max_size=300))
    @settings(max_examples=scaled(100), deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(CacheConfig(
            "t", size_bytes=8 * 1024, associativity=4,
            hit_latency_cycles=1))
        capacity = 8 * 1024 // 64
        for address in addresses:
            cache.install(address)
            assert cache.occupancy <= capacity

    @given(addresses=st.lists(lines, max_size=200))
    @settings(max_examples=scaled(100), deadline=None)
    def test_installed_line_immediately_hits(self, addresses):
        cache = SetAssociativeCache(CacheConfig(
            "t", size_bytes=8 * 1024, associativity=4,
            hit_latency_cycles=1))
        for address in addresses:
            cache.install(address)
            assert cache.lookup(address)

    @given(addresses=st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=scaled(100), deadline=None)
    def test_hits_plus_misses_equals_demand_lookups(self, addresses):
        cache = SetAssociativeCache(CacheConfig(
            "t", size_bytes=4 * 1024, associativity=2,
            hit_latency_cycles=1))
        for address in addresses:
            if not cache.lookup(address):
                cache.install(address)
        assert cache.hits + cache.misses == len(addresses)

    @given(addresses=st.lists(lines, max_size=100),
           evictions=st.lists(lines, max_size=100))
    @settings(max_examples=scaled(100), deadline=None)
    def test_invalidate_really_removes(self, addresses, evictions):
        cache = SetAssociativeCache(CacheConfig(
            "t", size_bytes=64 * 1024, associativity=8,
            hit_latency_cycles=1))
        for address in addresses:
            cache.install(address)
        for address in evictions:
            cache.invalidate(address)
            assert not cache.contains(address)


class TestWindowProperties:
    @given(points=st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e6),
                  st.floats(min_value=0, max_value=1e3)),
        max_size=100))
    @settings(max_examples=scaled(100), deadline=None)
    def test_total_matches_bruteforce(self, points):
        points = sorted(points)
        span = 1000.0
        window = SlidingWindow(span)
        for index, (time_ns, value) in enumerate(points):
            window.add(time_ns, value)
            now = time_ns
            expected = sum(v for t, v in points[:index + 1]
                           if t > now - span)
            assert abs(window.total() - expected) < 1e-6 * max(1, expected)


class TestPercentileProperties:
    values = st.lists(st.floats(min_value=-1e9, max_value=1e9,
                                allow_nan=False), min_size=1, max_size=200)

    @given(values=values, q=st.floats(min_value=0, max_value=100))
    @settings(max_examples=scaled(150), deadline=None)
    def test_bounded_by_min_max(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(values=values,
           qs=st.tuples(st.floats(min_value=0, max_value=100),
                        st.floats(min_value=0, max_value=100)))
    @settings(max_examples=scaled(100), deadline=None)
    def test_monotone_in_q(self, values, qs):
        low_q, high_q = sorted(qs)
        assert percentile(values, low_q) <= percentile(values, high_q)

    @given(values=values, q=st.floats(min_value=0, max_value=100))
    @settings(max_examples=scaled(100), deadline=None)
    def test_matches_numpy(self, values, q):
        assert percentile(values, q) == np.float64(
            np.percentile(values, q)) or abs(
            percentile(values, q) - np.percentile(values, q)) <= 1e-6 * (
            abs(np.percentile(values, q)) + 1)


class TestDRAMProperties:
    @given(u1=st.floats(min_value=0, max_value=2),
           u2=st.floats(min_value=0, max_value=2))
    @settings(max_examples=scaled(150), deadline=None)
    def test_latency_monotone(self, u1, u2):
        dram = DRAMModel(DRAMConfig())
        low, high = sorted((u1, u2))
        assert (dram.latency_at_utilization(low)
                <= dram.latency_at_utilization(high) + 1e-9)

    @given(requests=st.lists(st.booleans(), max_size=100))
    @settings(max_examples=scaled(100), deadline=None)
    def test_fill_accounting_conserved(self, requests):
        dram = DRAMModel(DRAMConfig())
        for index, is_prefetch in enumerate(requests):
            dram.request(float(index), is_prefetch=is_prefetch)
        assert dram.total_fills == len(requests)
        assert dram.total_bytes == 64 * len(requests)
        assert dram.prefetch_fills == sum(requests)


class TestMSRProperties:
    registers = st.lists(st.sampled_from([c.name for c in
                                          INTEL_LIKE_MAP.controls]),
                         max_size=30)

    @given(toggles=registers)
    @settings(max_examples=scaled(100), deadline=None)
    def test_enable_disable_algebra(self, toggles):
        """Any interleaving of per-prefetcher disables followed by
        enable_all returns to the reset state."""
        msrs = MSRFile()
        INTEL_LIKE_MAP.declare_registers(msrs)
        for name in toggles:
            INTEL_LIKE_MAP.disable_one(msrs, name)
            state = INTEL_LIKE_MAP.enabled_prefetchers(msrs)
            assert state[name] is False
        INTEL_LIKE_MAP.enable_all(msrs)
        assert INTEL_LIKE_MAP.all_enabled(msrs)


stats_values = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.integers(min_value=0, max_value=5_000),
)


def make_stats(values):
    instructions, compute, stall, misses = values
    return FunctionStats(instructions=instructions, compute_cycles=compute,
                         stall_cycles=stall, llc_misses=misses)


class TestStatsProperties:
    @given(a=stats_values, b=stats_values)
    @settings(max_examples=scaled(100), deadline=None)
    def test_merge_adds_fields(self, a, b):
        merged = make_stats(a)
        merged.merge(make_stats(b))
        assert merged.instructions == a[0] + b[0]
        assert merged.llc_misses == a[3] + b[3]
        expected = make_stats(a).cycles + make_stats(b).cycles
        assert abs(merged.cycles - expected) <= 1e-9 * max(1.0, expected)

    @given(a=stats_values)
    @settings(max_examples=scaled(100), deadline=None)
    def test_mpki_definition(self, a):
        stats = make_stats(a)
        if stats.instructions:
            assert stats.llc_mpki == 1000.0 * a[3] / a[0]
        else:
            assert stats.llc_mpki == 0.0
