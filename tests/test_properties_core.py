"""Property-based tests (hypothesis) for the controller and Soft
Limoncello invariants."""

from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.access import AccessKind, MemoryAccess, Trace
from repro.core import (
    HardLimoncelloController,
    LimoncelloConfig,
    PrefetchDescriptor,
    SoftwarePrefetchInjector,
)
from repro.core.controller import ControllerState
from repro.units import SECOND

utilizations = st.lists(
    st.floats(min_value=0.0, max_value=1.5, allow_nan=False), min_size=1,
    max_size=120)


class TestControllerProperties:
    @given(samples=utilizations,
           sustain=st.integers(min_value=0, max_value=10))
    @settings(max_examples=scaled(150), deadline=None)
    def test_transitions_respect_sustain_duration(self, samples, sustain):
        """Two consecutive prefetcher flips are always separated by at
        least the sustain duration (the anti-thrash guarantee)."""
        config = LimoncelloConfig(sustain_duration_ns=sustain * SECOND)
        controller = HardLimoncelloController(config)
        flip_times = []
        for tick, utilization in enumerate(samples):
            decision = controller.observe(tick * SECOND, utilization)
            if decision.changed:
                flip_times.append(decision.time_ns)
        for a, b in zip(flip_times, flip_times[1:]):
            assert b - a >= sustain * SECOND

    @given(samples=utilizations)
    @settings(max_examples=scaled(150), deadline=None)
    def test_state_always_consistent_with_prefetcher_flag(self, samples):
        controller = HardLimoncelloController()
        for tick, utilization in enumerate(samples):
            decision = controller.observe(tick * SECOND, utilization)
            assert decision.state in ControllerState
            assert (decision.prefetchers_enabled
                    == decision.state.prefetchers_enabled)
            assert (controller.prefetchers_enabled
                    == decision.prefetchers_enabled)

    @given(samples=utilizations)
    @settings(max_examples=scaled(100), deadline=None)
    def test_never_disables_below_upper_threshold(self, samples):
        """If utilization never exceeds the upper threshold, prefetchers
        stay enabled forever."""
        controller = HardLimoncelloController(
            LimoncelloConfig(upper_threshold=0.8))
        for tick, utilization in enumerate(samples):
            controller.observe(tick * SECOND, min(utilization, 0.8))
        assert controller.prefetchers_enabled
        assert controller.transitions == 0

    @given(samples=utilizations)
    @settings(max_examples=scaled(100), deadline=None)
    def test_transition_count_matches_changed_flags(self, samples):
        controller = HardLimoncelloController(
            LimoncelloConfig(sustain_duration_ns=0.0))
        changes = 0
        for tick, utilization in enumerate(samples):
            if controller.observe(tick * SECOND, utilization).changed:
                changes += 1
        assert controller.transitions == changes

    @given(samples=utilizations)
    @settings(max_examples=scaled(100), deadline=None)
    def test_intervals_partition_time(self, samples):
        controller = HardLimoncelloController(
            LimoncelloConfig(sustain_duration_ns=0.0))
        for tick, utilization in enumerate(samples):
            controller.observe(tick * SECOND, utilization)
        intervals = controller.state_intervals()
        assert intervals[0][0] == controller.decisions[0].time_ns
        assert intervals[-1][1] == controller.decisions[-1].time_ns
        for (_, end, state_a), (start, _, state_b) in zip(intervals,
                                                          intervals[1:]):
            assert end == start
            assert state_a != state_b


line_counts = st.integers(min_value=1, max_value=200)
descriptor_params = st.tuples(
    st.sampled_from((64, 128, 256, 512, 1024)),     # distance
    st.sampled_from((64, 128, 256, 512, 1024)),     # degree
    st.sampled_from((0, 256, 2048)),                # gate
)


class TestInjectorProperties:
    @staticmethod
    def stream(lines, base=0x40_0000, pc=5):
        return Trace([
            MemoryAccess(address=base + i * 64, pc=pc, function="f")
            for i in range(lines)
        ])

    @given(lines=line_counts, params=descriptor_params)
    @settings(max_examples=scaled(150), deadline=None)
    def test_demand_records_always_preserved(self, lines, params):
        distance, degree, gate = params
        descriptor = PrefetchDescriptor(
            "f", distance_bytes=distance, degree_bytes=degree,
            min_size_bytes=gate)
        out = SoftwarePrefetchInjector([descriptor]).inject(
            self.stream(lines))
        assert list(out.demand_only()) == list(self.stream(lines))

    @given(lines=line_counts, params=descriptor_params)
    @settings(max_examples=scaled(150), deadline=None)
    def test_clamped_prefetches_stay_inside_the_stream(self, lines, params):
        distance, degree, gate = params
        descriptor = PrefetchDescriptor(
            "f", distance_bytes=distance, degree_bytes=degree,
            min_size_bytes=gate, clamp_to_stream=True)
        out = SoftwarePrefetchInjector([descriptor]).inject(
            self.stream(lines))
        end = 0x40_0000 + lines * 64
        for record in out:
            if record.kind is AccessKind.SOFTWARE_PREFETCH:
                assert 0x40_0000 <= record.address
                assert record.address + record.size <= end

    @given(lines=line_counts, params=descriptor_params)
    @settings(max_examples=scaled(150), deadline=None)
    def test_gate_semantics_exact(self, lines, params):
        distance, degree, gate = params
        descriptor = PrefetchDescriptor(
            "f", distance_bytes=distance, degree_bytes=degree,
            min_size_bytes=gate, clamp_to_stream=True)
        injector = SoftwarePrefetchInjector([descriptor])
        injector.inject(self.stream(lines))
        stats = injector.last_stats
        if lines * 64 < gate:
            assert stats.streams_gated == 1
            assert stats.prefetches_inserted == 0
        else:
            assert stats.streams_instrumented == 1

    @given(lines=line_counts, params=descriptor_params)
    @settings(max_examples=scaled(100), deadline=None)
    def test_prefetch_never_targets_already_demanded_offsets_behind(
            self, lines, params):
        """Prefetches always aim ahead of the position they are issued
        from (distance is forward-only)."""
        distance, degree, gate = params
        descriptor = PrefetchDescriptor(
            "f", distance_bytes=distance, degree_bytes=degree,
            min_size_bytes=gate, clamp_to_stream=False)
        out = SoftwarePrefetchInjector([descriptor]).inject(
            self.stream(lines))
        last_demand = 0x40_0000 - 64
        for record in out:
            if record.kind is AccessKind.SOFTWARE_PREFETCH:
                assert record.address > last_demand
            else:
                last_demand = record.address
