"""Golden-equivalence tests: the columnar injector vs the record-path oracle.

``SoftwarePrefetchInjector.inject`` runs on compiled columns by default;
``REPRO_SLOW_INJECTOR=1`` forces the original record-path implementation.
Both must produce **bit-identical** traces — records, compiled columns
(including function-interning order), and ``InjectionStats`` — across
every injection mode: plain insertion, unclamped, size-gated, hint
emission, sub-line-stride streams, and interleaved multi-site runs.
"""

import os
import random

from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.access import (
    AccessKind,
    AddressSpace,
    MemoryAccess,
    Trace,
    interleave,
)
from repro.core.soft.descriptor import PrefetchDescriptor
from repro.core.soft.injector import (
    SLOW_INJECTOR_ENV,
    SoftwarePrefetchInjector,
)
from repro.units import KB
from repro.workloads import tax
from repro.workloads.mixes import fleetbench_trace


class _EnvPatch:
    """monkeypatch-compatible env shim usable inside hypothesis @given
    (the function-scoped ``monkeypatch`` fixture is not)."""

    @staticmethod
    def setenv(name, value):
        os.environ[name] = value

    @staticmethod
    def delenv(name, raising=True):
        os.environ.pop(name, None)


def inject_both(monkeypatch, trace, descriptors, emit_hints=False):
    """Inject with the compiled path and the oracle; return both."""
    monkeypatch.delenv(SLOW_INJECTOR_ENV, raising=False)
    fast_injector = SoftwarePrefetchInjector(descriptors,
                                             emit_hints=emit_hints)
    fast = fast_injector.inject(trace)
    monkeypatch.setenv(SLOW_INJECTOR_ENV, "1")
    slow_injector = SoftwarePrefetchInjector(descriptors,
                                             emit_hints=emit_hints)
    slow = slow_injector.inject(trace)
    monkeypatch.delenv(SLOW_INJECTOR_ENV, raising=False)
    return fast, slow, fast_injector.last_stats, slow_injector.last_stats


def assert_paths_agree(monkeypatch, trace, descriptors, emit_hints=False):
    fast, slow, fast_stats, slow_stats = inject_both(
        monkeypatch, trace, descriptors, emit_hints)
    assert list(fast) == list(slow)
    fast_compiled = fast.compile()
    slow_compiled = Trace(list(slow)).compile()
    assert fast_compiled.functions == slow_compiled.functions
    assert fast_compiled.packed == slow_compiled.packed
    assert fast_stats == slow_stats
    return fast, fast_stats


class TestGoldenEquivalence:
    def test_memcpy_batch(self, monkeypatch):
        trace = tax.memcpy_call_trace(AddressSpace(),
                                      [256, 4 * KB, 64, 300 * KB])
        out, stats = assert_paths_agree(
            monkeypatch, trace,
            [PrefetchDescriptor("memcpy", distance_bytes=512,
                                degree_bytes=128)])
        assert stats.prefetches_inserted > 0
        assert out.prefetch_count == stats.prefetches_inserted

    def test_fleetbench_mix_all_modes(self, monkeypatch):
        trace = fleetbench_trace(random.Random(5), AddressSpace(),
                                 scale=0.1)
        targets = ("memcpy", "memset", "hash", "crc32", "serialize",
                   "deserialize", "compress", "decompress")
        for emit_hints in (False, True):
            for clamp in (True, False):
                out, stats = assert_paths_agree(
                    monkeypatch, trace,
                    [PrefetchDescriptor(name, distance_bytes=512,
                                        degree_bytes=256,
                                        clamp_to_stream=clamp)
                     for name in targets],
                    emit_hints=emit_hints)
                assert stats.streams_seen > 0

    def test_size_gate(self, monkeypatch):
        trace = tax.memcpy_call_trace(AddressSpace(), [128, 64 * KB, 256])
        out, stats = assert_paths_agree(
            monkeypatch, trace,
            [PrefetchDescriptor("memcpy", min_size_bytes=4 * KB)])
        assert stats.streams_gated > 0
        assert stats.streams_instrumented > 0

    def test_untargeted_trace_is_shared_copy(self, monkeypatch):
        monkeypatch.delenv(SLOW_INJECTOR_ENV, raising=False)
        trace = tax.hashing_trace(AddressSpace(), 8 * KB)
        injector = SoftwarePrefetchInjector(
            [PrefetchDescriptor("memcpy")])
        out = injector.inject(trace)
        assert out is not trace
        assert out.compile() is trace.compile()  # no insertions: share columns
        assert list(out) == list(trace)

    def test_empty_trace(self, monkeypatch):
        out, stats = assert_paths_agree(
            monkeypatch, Trace(), [PrefetchDescriptor("memcpy")])
        assert len(out) == 0
        assert stats.streams_seen == 0


class TestEdgeCases:
    """The oracle-checked edge cases: each runs through both paths."""

    def test_sub_line_stride_stream(self, monkeypatch):
        # serialize reads 32-byte fields: two accesses per line. The run
        # must span the whole message, not break between fields.
        trace = tax.serialize_trace(AddressSpace(), 8 * KB)
        out, stats = assert_paths_agree(
            monkeypatch, trace,
            [PrefetchDescriptor("serialize", distance_bytes=256,
                                degree_bytes=64)])
        assert stats.streams_instrumented >= 1
        assert stats.prefetches_inserted > 0

    def test_emit_hints_single_record_per_stream(self, monkeypatch):
        trace = tax.memcpy_call_trace(AddressSpace(), [16 * KB, 32 * KB])
        out, stats = assert_paths_agree(
            monkeypatch, trace, [PrefetchDescriptor("memcpy")],
            emit_hints=True)
        hints = [r for r in out if r.kind is AccessKind.STREAM_HINT]
        # One hint per instrumented stream, sized to the whole stream.
        assert len(hints) == stats.streams_instrumented
        for hint in hints:
            assert hint.size % 64 == 0 and hint.size >= 16 * KB

    def test_clamp_at_stream_end(self, monkeypatch):
        # 8 lines with distance 4 lines: unclamped overshoots the end,
        # clamped truncates the final prefetches and skips the overshoot.
        records = [MemoryAccess(address=1 << 16 | i * 64, size=64, pc=9,
                                function="memcpy") for i in range(8)]
        trace = Trace(records)
        clamped, clamped_stats = assert_paths_agree(
            monkeypatch, trace,
            [PrefetchDescriptor("memcpy", distance_bytes=256,
                                degree_bytes=128, clamp_to_stream=True)])
        unclamped, unclamped_stats = assert_paths_agree(
            monkeypatch, trace,
            [PrefetchDescriptor("memcpy", distance_bytes=256,
                                degree_bytes=128, clamp_to_stream=False)])
        stream_end = (1 << 16) + 8 * 64
        clamped_pf = [r for r in clamped
                      if r.kind is AccessKind.SOFTWARE_PREFETCH]
        assert clamped_pf
        for record in clamped_pf:
            assert record.address + record.size <= stream_end
        unclamped_pf = [r for r in unclamped
                        if r.kind is AccessKind.SOFTWARE_PREFETCH]
        assert any(r.address + r.size > stream_end for r in unclamped_pf)
        assert clamped_stats.prefetches_inserted \
            < unclamped_stats.prefetches_inserted

    def test_interleaved_multi_site_runs(self, monkeypatch):
        # Two targeted functions plus an untargeted one, interleaved at
        # fine grain: per-site runs must survive the interleaving.
        space = AddressSpace()
        trace = interleave([
            tax.memcpy_trace(0x10000, 0x800000, 16 * KB),
            tax.hashing_trace(space, 16 * KB),
            tax.crc32_trace(space, 8 * KB),
        ], chunk=3)
        out, stats = assert_paths_agree(
            monkeypatch, trace,
            [PrefetchDescriptor("memcpy", distance_bytes=512,
                                degree_bytes=256),
             PrefetchDescriptor("hash", distance_bytes=256,
                                degree_bytes=128)])
        assert set(stats.per_function) == {"memcpy", "hash"}
        assert stats.per_function["memcpy"] > 0
        assert stats.per_function["hash"] > 0
        # crc32 was not targeted: its records pass through untouched.
        crc = [r for r in out if r.function == "crc32"]
        assert all(r.kind is AccessKind.LOAD for r in crc)

    def test_injected_output_reinjects_identically(self, monkeypatch):
        # Injecting an already-injected trace must skip the existing
        # SOFTWARE_PREFETCH records on both paths.
        trace = tax.memcpy_call_trace(AddressSpace(), [32 * KB])
        injector = SoftwarePrefetchInjector([PrefetchDescriptor("memcpy")])
        once = injector.inject(trace)
        assert_paths_agree(monkeypatch, once,
                           [PrefetchDescriptor("memcpy")])


class TestDispatch:
    def test_env_forces_record_path(self, monkeypatch):
        monkeypatch.setenv(SLOW_INJECTOR_ENV, "1")

        def boom(self, compiled):
            raise AssertionError("compiled injector used despite env")

        monkeypatch.setattr(SoftwarePrefetchInjector, "_inject_compiled",
                            boom)
        injector = SoftwarePrefetchInjector([PrefetchDescriptor("memcpy")])
        out = injector.inject(tax.memcpy_trace(0, 1 << 20, 4 * KB))
        assert out.prefetch_count > 0

    def test_default_uses_compiled_path(self, monkeypatch):
        monkeypatch.delenv(SLOW_INJECTOR_ENV, raising=False)
        used = []
        original = SoftwarePrefetchInjector._inject_compiled

        def spy(self, compiled):
            used.append(True)
            return original(self, compiled)

        monkeypatch.setattr(SoftwarePrefetchInjector, "_inject_compiled",
                            spy)
        injector = SoftwarePrefetchInjector([PrefetchDescriptor("memcpy")])
        injector.inject(tax.memcpy_trace(0, 1 << 20, 4 * KB))
        assert used

    def test_output_is_column_backed(self, monkeypatch):
        monkeypatch.delenv(SLOW_INJECTOR_ENV, raising=False)
        injector = SoftwarePrefetchInjector([PrefetchDescriptor("memcpy")])
        out = injector.inject(tax.memcpy_trace(0, 1 << 20, 64 * KB))
        assert out._records is None  # stayed columnar end to end


_LINE = 64

_stream_strategy = st.tuples(
    st.sampled_from(("memcpy", "hash", "other")),   # function
    st.integers(min_value=0, max_value=9),           # pc
    st.integers(min_value=0, max_value=1 << 12),     # base line index
    st.integers(min_value=1, max_value=40),          # lines in the stream
    st.sampled_from((8, 32, 64, 256)),               # access size
)


@st.composite
def trace_strategy(draw):
    """Interleave a handful of streams plus random noise records."""
    streams = draw(st.lists(_stream_strategy, min_size=1, max_size=4))
    chunks = []
    for function, pc, base_line, lines, size in streams:
        base = base_line * _LINE
        records = []
        offset = 0
        while offset < lines * _LINE:
            records.append(MemoryAccess(
                address=base + offset, size=size, pc=pc, function=function))
            offset += max(size, 8) if size < _LINE else size
        chunks.append(Trace(records))
    noise = draw(st.lists(st.builds(
        MemoryAccess,
        address=st.integers(min_value=0, max_value=1 << 20),
        size=st.sampled_from((8, 64)),
        kind=st.sampled_from((AccessKind.LOAD, AccessKind.STORE,
                              AccessKind.SOFTWARE_PREFETCH)),
        pc=st.integers(min_value=10, max_value=12),
        function=st.sampled_from(("memcpy", "noise")),
    ), max_size=15))
    chunk = draw(st.integers(min_value=1, max_value=16))
    merged = interleave(chunks + [Trace(noise)] if noise else chunks,
                        chunk=chunk)
    return merged


_descriptor_strategy = st.builds(
    PrefetchDescriptor,
    function=st.sampled_from(("memcpy", "hash")),
    distance_bytes=st.sampled_from((64, 256, 512, 1024)),
    degree_bytes=st.sampled_from((64, 128, 256)),
    min_size_bytes=st.sampled_from((0, 1024)),
    clamp_to_stream=st.booleans(),
)


class TestPropertyEquivalence:
    @given(trace=trace_strategy(), descriptor=_descriptor_strategy,
           emit_hints=st.booleans())
    @settings(max_examples=scaled(80), deadline=None)
    def test_random_traces(self, trace, descriptor, emit_hints):
        assert_paths_agree(_EnvPatch, trace, [descriptor],
                           emit_hints=emit_hints)
