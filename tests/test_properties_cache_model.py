"""A reference-model equivalence test for the set-associative cache.

Hypothesis drives random lookup/install/invalidate sequences against both
:class:`repro.memsys.SetAssociativeCache` and a tiny, obviously-correct
LRU reference; every observable (hit/miss, residency, occupancy) must
agree at every step.
"""

from collections import OrderedDict

from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.memsys import CacheConfig, SetAssociativeCache

SETS = 4
WAYS = 2
LINE = 64


class ReferenceCache:
    """The simplest possible correct set-associative LRU cache."""

    def __init__(self) -> None:
        self.sets = [OrderedDict() for _ in range(SETS)]

    def _set(self, line):
        return self.sets[(line // LINE) % SETS]

    def lookup(self, line) -> bool:
        cache_set = self._set(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            return True
        return False

    def install(self, line) -> None:
        cache_set = self._set(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            return
        if len(cache_set) >= WAYS:
            cache_set.popitem(last=False)
        cache_set[line] = None

    def invalidate(self, line) -> None:
        self._set(line).pop(line, None)

    def contains(self, line) -> bool:
        return line in self._set(line)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets)


operations = st.lists(
    st.tuples(st.sampled_from(("lookup", "install", "invalidate")),
              st.integers(min_value=0, max_value=31).map(lambda x: x * LINE)),
    max_size=400)


@given(ops=operations)
@settings(max_examples=scaled(300), deadline=None)
def test_cache_matches_reference_model(ops):
    cache = SetAssociativeCache(CacheConfig(
        "t", size_bytes=SETS * WAYS * LINE, associativity=WAYS,
        hit_latency_cycles=1))
    reference = ReferenceCache()
    for op, line in ops:
        if op == "lookup":
            assert cache.lookup(line) == reference.lookup(line)
        elif op == "install":
            cache.install(line)
            reference.install(line)
        else:
            cache.invalidate(line)
            reference.invalidate(line)
        assert cache.occupancy == reference.occupancy
    # Final residency agrees line by line.
    for line in range(0, 32 * LINE, LINE):
        assert cache.contains(line) == reference.contains(line), line
