"""Tests for the loaded-latency measurement (Figures 1 and 6)."""

import pytest

from repro.analysis import (
    LatencyCurve,
    LatencyPoint,
    limoncello_envelope,
    measure_latency_curve,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def curves():
    utilizations = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    on = measure_latency_curve(True, utilizations, probe_hops=250)
    off = measure_latency_curve(False, utilizations, probe_hops=250)
    return on, off


class TestFigure1Shape:
    def test_latency_rises_with_utilization(self, curves):
        on, off = curves
        for curve in curves:
            latencies = curve.latencies
            assert latencies[-1] > latencies[0]
            # Monotone non-decreasing within noise.
            for a, b in zip(latencies, latencies[1:]):
                assert b > 0.9 * a

    def test_roughly_2x_or_more_growth(self, curves):
        """Figure 1: ~2x+ latency from idle to saturation."""
        on, off = curves
        assert on.latency_at(1.0) > 2.5 * on.latency_at(0.0)

    def test_curves_coincide_at_low_utilization(self, curves):
        on, off = curves
        assert on.latency_at(0.0) == pytest.approx(off.latency_at(0.0),
                                                   rel=0.05)

    def test_prefetchers_off_wins_at_high_utilization(self, curves):
        """The paper's headline: ~15% lower load-to-use at high load."""
        on, off = curves
        reduction = off.reduction_versus(on, 0.9)
        assert -0.35 < reduction < -0.05

    def test_off_curve_saturates_later(self, curves):
        """Prefetchers off, the socket sustains more useful bandwidth
        before the latency wall (Section 3)."""
        on, off = curves
        threshold = 1.5 * on.latency_at(0.0)
        on_knee = min((p.utilization for p in on.points
                       if p.latency_ns > threshold), default=1.0)
        off_knee = min((p.utilization for p in off.points
                        if p.latency_ns > threshold), default=1.0)
        assert off_knee >= on_knee


class TestEnvelope:
    def test_envelope_piecewise_structure(self, curves):
        """Below the threshold the envelope is the on-curve (optimizing
        cache hit rate); above, the off-curve (optimizing latency)."""
        on, off = curves
        envelope = limoncello_envelope(on, off, upper_threshold=0.8)
        for point in envelope.points:
            if point.utilization <= 0.8:
                assert point.latency_ns == on.latency_at(point.utilization)
            else:
                assert point.latency_ns == off.latency_at(point.utilization)
                assert point.latency_ns <= on.latency_at(point.utilization)

    def test_envelope_matches_on_curve_below_threshold(self, curves):
        on, off = curves
        envelope = limoncello_envelope(on, off, upper_threshold=0.8)
        assert envelope.latency_at(0.4) == on.latency_at(0.4)

    def test_empty_curve_rejected(self):
        empty = LatencyCurve(True, ())
        with pytest.raises(ConfigError):
            limoncello_envelope(empty, empty)


class TestValidation:
    def test_bad_probe_hops(self):
        with pytest.raises(ConfigError):
            measure_latency_curve(True, [0.5], probe_hops=0)

    def test_negative_overfetch(self):
        with pytest.raises(ConfigError):
            measure_latency_curve(True, [0.5], overfetch=-0.1)

    def test_negative_utilization(self):
        with pytest.raises(ConfigError):
            measure_latency_curve(True, [-0.5])

    def test_latency_at_on_empty(self):
        with pytest.raises(ConfigError):
            LatencyCurve(True, ()).latency_at(0.5)

    def test_latency_at_nearest(self):
        curve = LatencyCurve(True, (LatencyPoint(0.0, 100.0),
                                    LatencyPoint(1.0, 400.0)))
        assert curve.latency_at(0.1) == 100.0
        assert curve.latency_at(0.9) == 400.0
