"""Tests for the platform catalog (Figure 2's data)."""

import pytest

from repro.errors import ConfigError
from repro.fleet import PLATFORM_1, PLATFORM_2, PLATFORM_CATALOG, PlatformSpec
from repro.fleet.platform import platform_by_name


class TestCatalog:
    def test_total_bandwidth_grows_with_generations(self):
        bandwidths = [spec.saturation_bandwidth for spec in PLATFORM_CATALOG]
        assert bandwidths == sorted(bandwidths)
        assert bandwidths[-1] / bandwidths[0] > 6  # ~8x growth (Fig 2)

    def test_bandwidth_per_core_plateaus(self):
        """Figure 2's point: per-core bandwidth stays in a narrow band
        while totals grow."""
        per_core = [spec.bandwidth_per_core for spec in PLATFORM_CATALOG]
        assert max(per_core) / min(per_core) < 1.5

    def test_core_counts_grow(self):
        cores = [spec.cores_per_socket for spec in PLATFORM_CATALOG]
        assert cores == sorted(cores)

    def test_years_ordered(self):
        years = [spec.year for spec in PLATFORM_CATALOG]
        assert years == sorted(years)

    def test_evaluation_platforms_roughly_3gbps_per_core(self):
        """Section 2.1: ~3 GB/s achievable per core on both platforms."""
        for spec in (PLATFORM_1, PLATFORM_2):
            assert 2.5 <= spec.bandwidth_per_core <= 3.5

    def test_platforms_have_known_vendors(self):
        from repro.msr import msr_map_for_vendor
        for spec in PLATFORM_CATALOG:
            assert msr_map_for_vendor(spec.vendor)

    def test_lookup_by_name(self):
        assert platform_by_name("gen-2020").year == 2020
        with pytest.raises(ConfigError):
            platform_by_name("gen-1999")

    def test_compute_units(self):
        spec = PlatformSpec("x", 2020, "intel-like", 10, 30.0,
                            compute_units_per_core=1.5)
        assert spec.compute_units == 15.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            PlatformSpec("x", 2020, "intel-like", 0, 30.0)
        with pytest.raises(ConfigError):
            PlatformSpec("x", 2020, "intel-like", 8, 0.0)
