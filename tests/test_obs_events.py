"""Tests for the observability event schema and tracer primitives."""

import pytest

from repro.errors import TraceError
from repro.obs import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_events_jsonl,
    validate_event,
    write_events_jsonl,
)

#: One plausible value per required field, so every event kind can be
#: instantiated generically.
FIELD_SAMPLES = {
    "study": "ablation",
    "index": 0,
    "machines": 4,
    "seed": 7,
    "epochs": 10,
    "key": "a" * 64,
    "ident": "machine-0/0",
    "state": "overloaded",
    "enabled": False,
    "ok": True,
    "dark_since_ns": 1.0e9,
    "incident": "telemetry-blackout",
    "onset_ns": 1.0e9,
    "detected_ns": 2.0e9,
    "recovered_ns": 3.0e9,
    "policy": "enabled",
    "accesses": 160_000,
    "round": 1,
    "arm": "off",
}


def sample_event(kind, merged=True):
    event = {"v": EVENT_SCHEMA_VERSION, "kind": kind, "t_ns": 5.0}
    for field in EVENT_TYPES[kind]:
        event[field] = FIELD_SAMPLES[field]
    if merged:
        event["seq"] = 0
        event["shard"] = None
    return event


class TestValidateEvent:
    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_every_kind_validates(self, kind):
        validate_event(sample_event(kind))

    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_every_kind_validates_unmerged(self, kind):
        validate_event(sample_event(kind, merged=False), merged=False)

    def test_unknown_kind_rejected(self):
        event = sample_event("study-start")
        event["kind"] = "coffee-break"
        with pytest.raises(TraceError, match="unknown event kind"):
            validate_event(event)

    def test_wrong_version_rejected(self):
        event = sample_event("study-start")
        event["v"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(TraceError, match="schema version"):
            validate_event(event)

    def test_missing_required_field_rejected(self):
        event = sample_event("shard-start")
        del event["seed"]
        with pytest.raises(TraceError, match="seed"):
            validate_event(event)

    def test_non_numeric_t_ns_rejected(self):
        event = sample_event("study-start")
        event["t_ns"] = "soon"
        with pytest.raises(TraceError, match="t_ns"):
            validate_event(event)

    def test_merged_requires_seq(self):
        event = sample_event("study-start")
        del event["seq"]
        with pytest.raises(TraceError, match="seq"):
            validate_event(event)

    def test_merged_requires_shard(self):
        event = sample_event("study-start")
        del event["shard"]
        with pytest.raises(TraceError, match="shard"):
            validate_event(event)

    def test_bad_shard_type_rejected(self):
        event = sample_event("study-start")
        event["shard"] = "zero"
        with pytest.raises(TraceError, match="shard"):
            validate_event(event)

    def test_non_dict_rejected(self):
        with pytest.raises(TraceError):
            validate_event(["not", "an", "event"])


class TestJsonlRoundTrip:
    def test_every_kind_round_trips(self, tmp_path):
        events = [dict(sample_event(kind), seq=i)
                  for i, kind in enumerate(sorted(EVENT_TYPES))]
        path = tmp_path / "events.jsonl"
        write_events_jsonl(events, path)
        assert read_events_jsonl(path) == events

    def test_canonical_bytes_are_stable(self, tmp_path):
        events = [sample_event("study-start")]
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_events_jsonl(events, first)
        write_events_jsonl(list(read_events_jsonl(first)), second)
        assert first.read_bytes() == second.read_bytes()

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"v": 1, "kind": "study-start"\n')
        with pytest.raises(TraceError, match="invalid JSON"):
            read_events_jsonl(path)

    def test_validation_can_be_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"anything": "goes"}\n')
        assert read_events_jsonl(path, validate=False) == [
            {"anything": "goes"}]


class TestNullTracer:
    def test_falsy_and_disabled(self):
        assert not NULL_TRACER
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_methods_are_no_ops(self):
        NULL_TRACER.event("study-start", 0.0, study="x")
        with NULL_TRACER.context(arm="experiment"):
            with NULL_TRACER.phase("execute"):
                pass
        # Stateless: nothing to assert beyond "did not raise".
        assert not hasattr(NULL_TRACER, "events")

    def test_zero_allocation_shape(self):
        # __slots__ = () means the null tracer cannot grow state.
        with pytest.raises(AttributeError):
            NULL_TRACER.events = []


class TestTracer:
    def test_truthy_and_enabled(self):
        tracer = Tracer()
        assert tracer
        assert tracer.enabled is True

    def test_event_envelope(self):
        tracer = Tracer()
        tracer.event("sim-run", 42, accesses=7)
        assert tracer.events == [
            {"v": EVENT_SCHEMA_VERSION, "kind": "sim-run", "t_ns": 42.0,
             "accesses": 7}]

    def test_context_fields_attach(self):
        tracer = Tracer()
        with tracer.context(arm="control"):
            tracer.event("sim-run", 1.0, accesses=1)
        tracer.event("sim-run", 2.0, accesses=2)
        assert tracer.events[0]["arm"] == "control"
        assert "arm" not in tracer.events[1]

    def test_context_nesting_and_restore(self):
        tracer = Tracer()
        with tracer.context(arm="control"):
            with tracer.context(phase="warmup"):
                tracer.event("sim-run", 1.0, accesses=1)
            tracer.event("sim-run", 2.0, accesses=2)
        event_inner, event_outer = tracer.events
        assert event_inner["arm"] == "control"
        assert event_inner["phase"] == "warmup"
        assert event_outer["arm"] == "control"
        assert "phase" not in event_outer

    def test_call_fields_override_context(self):
        tracer = Tracer()
        with tracer.context(arm="control"):
            tracer.event("sim-run", 1.0, accesses=1, arm="experiment")
        assert tracer.events[0]["arm"] == "experiment"

    def test_context_restored_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.context(arm="control"):
                raise RuntimeError("boom")
        tracer.event("sim-run", 1.0, accesses=1)
        assert "arm" not in tracer.events[0]

    def test_phase_records_wall_time(self):
        tracer = Tracer()
        with tracer.phase("execute"):
            pass
        assert len(tracer.phases) == 1
        name, wall_s = tracer.phases[0]
        assert name == "execute"
        assert wall_s >= 0.0
