"""Tests for the deterministic shard planner and seed derivation."""

import pytest

from repro.errors import ConfigError
from repro.fleet.shard import (
    DEFAULT_SHARD_SIZE,
    ShardPlan,
    plan_shards,
    shard_seed,
)


class TestShardSeed:
    def test_shard_zero_keeps_master_seed(self):
        for master in (0, 9, 11, 123456789):
            assert shard_seed(master, 0) == master

    def test_stable_across_calls(self):
        assert shard_seed(9, 3) == shard_seed(9, 3)

    def test_distinct_per_index_and_master(self):
        seeds = {shard_seed(9, i) for i in range(64)}
        assert len(seeds) == 64
        assert shard_seed(9, 1) != shard_seed(10, 1)

    def test_fits_in_signed_64_bits(self):
        for index in range(1, 32):
            assert 0 <= shard_seed(7, index) < 2 ** 63

    def test_known_value_pinned(self):
        """Derivation is part of the result format: changing it silently
        would invalidate every cached / archived sharded result."""
        assert shard_seed(9, 1) == 2547872112924920337

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            shard_seed(9, -1)


class TestPlanShards:
    def test_small_population_is_one_shard(self):
        plan = plan_shards(10)
        assert plan.sizes == (10,)
        assert len(plan) == 1

    def test_sizes_sum_and_balance(self):
        plan = plan_shards(200, 32)
        assert sum(plan.sizes) == 200
        assert max(plan.sizes) - min(plan.sizes) <= 1
        assert len(plan) == 7  # ceil(200 / 32)

    def test_every_shard_within_size(self):
        for machines in (1, 31, 32, 33, 63, 64, 65, 997):
            plan = plan_shards(machines, 32)
            assert all(size <= 32 for size in plan.sizes), machines
            assert sum(plan.sizes) == machines

    def test_plan_is_deterministic(self):
        assert plan_shards(100, 7) == plan_shards(100, 7)

    def test_seeds_follow_plan_order(self):
        plan = plan_shards(96, 32)
        assert plan.seeds(11) == [shard_seed(11, i) for i in range(3)]

    def test_default_shard_size_used(self):
        assert len(plan_shards(DEFAULT_SHARD_SIZE)) == 1
        assert len(plan_shards(DEFAULT_SHARD_SIZE + 1)) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            plan_shards(0)
        with pytest.raises(ConfigError):
            plan_shards(10, 0)

    def test_plan_is_plain_data(self):
        plan = plan_shards(50, 20)
        assert plan == ShardPlan(machines=50, sizes=(17, 17, 16))
