"""Tests for PrefetchDescriptor (the Section 4.2 design space)."""

import pytest

from repro.core import PrefetchDescriptor
from repro.errors import ConfigError


class TestValidation:
    def test_defaults(self):
        d = PrefetchDescriptor("memcpy")
        assert d.distance_bytes == 512
        assert d.degree_bytes == 256
        assert d.clamp_to_stream

    def test_lines_properties(self):
        d = PrefetchDescriptor("memcpy", distance_bytes=512, degree_bytes=256)
        assert d.distance_lines == 8
        assert d.degree_lines == 4

    def test_empty_function_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchDescriptor("")

    def test_sub_line_distance_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchDescriptor("f", distance_bytes=32)

    def test_unaligned_distance_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchDescriptor("f", distance_bytes=100)

    def test_unaligned_degree_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchDescriptor("f", degree_bytes=100)

    def test_negative_gate_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchDescriptor("f", min_size_bytes=-1)


class TestBehaviour:
    def test_with_distance_and_degree(self):
        d = PrefetchDescriptor("f").with_distance(1024).with_degree(512)
        assert d.distance_bytes == 1024
        assert d.degree_bytes == 512
        assert d.function == "f"

    def test_size_gate(self):
        d = PrefetchDescriptor("f", min_size_bytes=4096)
        assert not d.applies_to(1024)
        assert d.applies_to(4096)
        assert d.applies_to(1 << 20)

    def test_no_gate_applies_to_everything(self):
        assert PrefetchDescriptor("f").applies_to(64)

    def test_label_mentions_parameters(self):
        d = PrefetchDescriptor("memcpy", distance_bytes=512,
                               degree_bytes=256, min_size_bytes=1024,
                               clamp_to_stream=False)
        label = d.label()
        assert "memcpy" in label
        assert "512" in label
        assert "unclamped" in label
