"""Tests for prefetcher actuation through simulated MSRs."""

import random

import pytest

from repro.core import CallbackActuator, MSRPrefetcherActuator
from repro.msr import AMD_LIKE_MAP, FaultyMSRFile, INTEL_LIKE_MAP, MSRFile


class TestMSRActuator:
    def test_disable_and_enable(self):
        msrs = MSRFile()
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP)
        assert actuator.is_enabled()
        assert actuator.set_enabled(False)
        assert not actuator.is_enabled()
        assert INTEL_LIKE_MAP.all_disabled(msrs)
        assert actuator.set_enabled(True)
        assert INTEL_LIKE_MAP.all_enabled(msrs)

    def test_works_on_amd_layout(self):
        msrs = MSRFile()
        actuator = MSRPrefetcherActuator(msrs, AMD_LIKE_MAP)
        actuator.set_enabled(False)
        assert AMD_LIKE_MAP.all_disabled(msrs)

    def test_partial_state_reports_disabled(self):
        """If something else flipped one prefetcher off, the actuator must
        report 'not enabled' so the daemon re-converges."""
        msrs = MSRFile()
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP)
        INTEL_LIKE_MAP.disable_one(msrs, "l2_stream")
        assert not actuator.is_enabled()
        actuator.set_enabled(True)
        assert actuator.is_enabled()

    def test_retries_through_transient_failures(self):
        msrs = FaultyMSRFile(failure_rate=0.5, rng=random.Random(3))
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP, retries=50)
        assert actuator.set_enabled(False)
        assert INTEL_LIKE_MAP.all_disabled(msrs)

    def test_gives_up_after_bounded_retries(self):
        msrs = FaultyMSRFile(failure_rate=0.999, rng=random.Random(3))
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP, retries=2)
        assert not actuator.set_enabled(False)
        assert actuator.failed_actuations == 1

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            MSRPrefetcherActuator(MSRFile(), INTEL_LIKE_MAP, retries=0)


class TestCallbackActuator:
    def test_applies_and_tracks_state(self):
        seen = []
        actuator = CallbackActuator(seen.append)
        assert actuator.is_enabled()
        actuator.set_enabled(False)
        assert seen == [False]
        assert not actuator.is_enabled()

    def test_initial_state(self):
        actuator = CallbackActuator(lambda e: None, initial_enabled=False)
        assert not actuator.is_enabled()
