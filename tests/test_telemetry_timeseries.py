"""Tests for repro.telemetry.timeseries."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import TimeSeries


class TestAppend:
    def test_append_and_len(self):
        series = TimeSeries("bw")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_rejects_backwards_time(self):
        series = TimeSeries()
        series.append(10.0, 1.0)
        with pytest.raises(TelemetryError):
            series.append(5.0, 2.0)

    def test_equal_timestamps_allowed(self):
        series = TimeSeries()
        series.append(10.0, 1.0)
        series.append(10.0, 2.0)
        assert len(series) == 2

    def test_extend(self):
        series = TimeSeries()
        series.extend([(0.0, 1.0), (1.0, 2.0)])
        assert series.values == (1.0, 2.0)


class TestQueries:
    def make(self):
        series = TimeSeries("x")
        series.extend([(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0)])
        return series

    def test_last(self):
        point = self.make().last()
        assert point.time_ns == 3.0
        assert point.value == 40.0

    def test_last_empty_raises(self):
        with pytest.raises(TelemetryError):
            TimeSeries().last()

    def test_between_half_open(self):
        sub = self.make().between(1.0, 3.0)
        assert sub.values == (20.0, 30.0)

    def test_mean_max_min(self):
        series = self.make()
        assert series.mean() == 25.0
        assert series.maximum() == 40.0
        assert series.minimum() == 10.0

    def test_mean_empty_raises(self):
        with pytest.raises(TelemetryError):
            TimeSeries().mean()


class TestResample:
    def test_buckets_average(self):
        series = TimeSeries()
        series.extend([(0.0, 1.0), (0.5, 3.0), (1.0, 10.0)])
        resampled = series.resample(1.0)
        assert resampled.values == (2.0, 10.0)

    def test_empty_buckets_skipped(self):
        series = TimeSeries()
        series.extend([(0.0, 1.0), (5.0, 9.0)])
        resampled = series.resample(1.0)
        assert len(resampled) == 2
        assert resampled.times == (0.0, 5.0)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeries().resample(0.0)

    def test_empty_series(self):
        assert len(TimeSeries().resample(1.0)) == 0

    def test_iteration_yields_points(self):
        series = TimeSeries()
        series.append(1.0, 2.0)
        points = list(series)
        assert points[0].time_ns == 1.0
        assert points[0].value == 2.0
