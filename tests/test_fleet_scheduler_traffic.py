"""Tests for the scheduler and the traffic models."""

import random

import pytest

from repro.errors import ConfigError, SchedulingError
from repro.fleet import (
    BandwidthAwareScheduler,
    DiurnalTraffic,
    Machine,
    PLATFORM_1,
    Task,
    VolatileTraffic,
)
from repro.units import SECOND


def task(cores=8.0, bandwidth=30.0, name="t"):
    return Task(name=name, cores=cores, base_qps=100.0,
                bandwidth_demand=bandwidth, memory_boundedness=0.4,
                function_shares={"memcpy": 1.0}, noise_sigma=0.0)


class TestScheduler:
    def test_places_on_least_loaded_socket(self):
        machine = Machine("m", PLATFORM_1, sockets=2)
        machine.sockets[0].add_task(task(name="existing", bandwidth=50.0))
        scheduler = BandwidthAwareScheduler()
        chosen = scheduler.try_place(task(name="new"), [machine])
        assert chosen is machine.sockets[1]

    def test_respects_cpu_capacity(self):
        machine = Machine("m", PLATFORM_1, sockets=1)
        scheduler = BandwidthAwareScheduler()
        big = task(cores=float(machine.sockets[0].cores), bandwidth=10.0)
        assert scheduler.try_place(big, [machine]) is not None
        assert scheduler.try_place(task(cores=1.0, bandwidth=1.0),
                                   [machine]) is None

    def test_respects_bandwidth_headroom(self):
        machine = Machine("m", PLATFORM_1, sockets=1)
        scheduler = BandwidthAwareScheduler(bandwidth_headroom=0.5)
        limit = 0.5 * machine.sockets[0].saturation_bandwidth
        hog = task(cores=4.0, bandwidth=limit * 2)
        assert scheduler.try_place(hog, [machine]) is None
        assert scheduler.rejections == 1

    def test_place_raises_when_impossible(self):
        machine = Machine("m", PLATFORM_1, sockets=1)
        scheduler = BandwidthAwareScheduler(bandwidth_headroom=0.01)
        with pytest.raises(SchedulingError):
            scheduler.place(task(), [machine])

    def test_prefetch_awareness_frees_capacity(self):
        """With prefetchers disabled, a prefetch-aware scheduler admits
        work an unaware one rejects — the Figure 19 mechanism."""
        def loaded_machine():
            machine = Machine("m", PLATFORM_1, sockets=1)
            machine.force_prefetchers(False)
            return machine

        incoming = task(cores=4.0,
                        bandwidth=0.16 * PLATFORM_1.saturation_bandwidth)
        filler = task(cores=4.0, name="filler",
                      bandwidth=0.75 * PLATFORM_1.saturation_bandwidth
                      * 0.9 / 1.11)

        unaware_machine = loaded_machine()
        unaware_machine.sockets[0].add_task(filler)
        unaware = BandwidthAwareScheduler(prefetch_aware=False)
        aware_machine = loaded_machine()
        aware_machine.sockets[0].add_task(filler)
        aware = BandwidthAwareScheduler(prefetch_aware=True)

        unaware_ok = unaware.try_place(incoming, [unaware_machine])
        aware_ok = aware.try_place(incoming, [aware_machine])
        assert aware_ok is not None
        assert unaware_ok is None

    def test_drain_removes_tasks(self):
        machine = Machine("m", PLATFORM_1, sockets=1)
        for i in range(4):
            machine.sockets[0].add_task(task(cores=4.0, name=f"t{i}"))
        removed = BandwidthAwareScheduler.drain([machine], 2,
                                                random.Random(0))
        assert len(removed) == 2
        assert machine.cores_used == 8.0

    def test_bad_headroom(self):
        with pytest.raises(SchedulingError):
            BandwidthAwareScheduler(bandwidth_headroom=0.0)


class TestDiurnalTraffic:
    def test_oscillates_around_mean(self):
        traffic = DiurnalTraffic(mean=0.6, amplitude=0.2, noise=0.0,
                                 period_ns=100.0)
        values = [traffic.target(t) for t in range(0, 100, 5)]
        assert max(values) > 0.7
        assert min(values) < 0.5
        assert abs(sum(values) / len(values) - 0.6) < 0.05

    def test_clamped_to_unit_interval(self):
        traffic = DiurnalTraffic(mean=0.7, amplitude=0.3, noise=0.2,
                                 rng=random.Random(1))
        for t in range(100):
            assert 0.0 <= traffic.target(float(t)) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalTraffic(mean=1.5)
        with pytest.raises(ConfigError):
            DiurnalTraffic(mean=0.9, amplitude=0.3)
        with pytest.raises(ConfigError):
            DiurnalTraffic(period_ns=0.0)


class TestVolatileTraffic:
    def test_bursts_occur_and_decay(self):
        traffic = VolatileTraffic(baseline=0.5, burst_height=0.4,
                                  burst_probability=0.3,
                                  burst_duration_ns=5 * SECOND,
                                  noise=0.0, rng=random.Random(4))
        values = [traffic.target(t * SECOND) for t in range(200)]
        assert max(values) >= 0.85   # bursts reach baseline + height
        assert min(values) <= 0.55   # quiet periods return to baseline
        # Both regimes well represented.
        high = sum(1 for v in values if v > 0.7)
        assert 10 < high < 190

    def test_validation(self):
        with pytest.raises(ConfigError):
            VolatileTraffic(baseline=1.5)
        with pytest.raises(ConfigError):
            VolatileTraffic(burst_probability=1.5)
        with pytest.raises(ConfigError):
            VolatileTraffic(burst_duration_ns=0.0)
