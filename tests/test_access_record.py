"""Tests for repro.access.record."""

import pytest

from repro.access import AccessKind, MemoryAccess


class TestConstruction:
    def test_defaults(self):
        access = MemoryAccess(address=0x1000)
        assert access.size == 8
        assert access.kind is AccessKind.LOAD
        assert access.gap_cycles == 0
        assert access.is_demand
        assert access.is_load

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=-1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=0, size=0)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(address=0, gap_cycles=-1)

    def test_frozen(self):
        access = MemoryAccess(address=0x1000)
        with pytest.raises(AttributeError):
            access.address = 0x2000


class TestKinds:
    def test_store_is_demand(self):
        access = MemoryAccess(address=0, kind=AccessKind.STORE)
        assert access.is_demand
        assert not access.is_load

    def test_software_prefetch_is_not_demand(self):
        access = MemoryAccess(address=0, kind=AccessKind.SOFTWARE_PREFETCH)
        assert not access.is_demand


class TestLines:
    def test_line_alignment(self):
        assert MemoryAccess(address=0x1039).line == 0x1000

    def test_lines_touched_single(self):
        lines = list(MemoryAccess(address=0x1000, size=8).lines_touched())
        assert lines == [0x1000]

    def test_lines_touched_straddles_boundary(self):
        lines = list(MemoryAccess(address=0x103C, size=8).lines_touched())
        assert lines == [0x1000, 0x1040]

    def test_lines_touched_multi_line(self):
        lines = list(MemoryAccess(address=0x1000, size=256).lines_touched())
        assert lines == [0x1000, 0x1040, 0x1080, 0x10C0]


class TestTransforms:
    def test_with_function(self):
        access = MemoryAccess(address=0x1000).with_function("memcpy")
        assert access.function == "memcpy"
        assert access.address == 0x1000

    def test_shifted(self):
        access = MemoryAccess(address=0x1000, pc=7).shifted(0x40)
        assert access.address == 0x1040
        assert access.pc == 7
