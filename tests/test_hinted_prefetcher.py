"""Tests for the software-hinted prefetcher interface (Section 8.3)."""

import pytest

from repro.access import AccessKind, MemoryAccess, Trace
from repro.core import PrefetchDescriptor, SoftwarePrefetchInjector
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.memsys.prefetchers import NextLinePrefetcher
from repro.memsys.prefetchers.hinted import HintedRegionPrefetcher
from repro.units import KB
from repro.workloads import memcpy_trace

LINE = 64


class TestHintedPrefetcher:
    def test_silent_without_hints(self):
        prefetcher = HintedRegionPrefetcher()
        assert prefetcher.observe(0x1000, 0, False) == []

    def test_streams_exactly_the_hinted_extent(self):
        prefetcher = HintedRegionPrefetcher(degree=64, lead_lines=64)
        prefetcher.accept_hint(0x10000, 8 * LINE)
        issued = []
        for i in range(16):
            issued.extend(prefetcher.observe(0x10000 + i * LINE, 0, False))
        assert sorted(issued) == [0x10000 + i * LINE for i in range(8)]
        assert prefetcher.active_regions == 0  # retired when exhausted

    def test_pacing_respects_lead(self):
        prefetcher = HintedRegionPrefetcher(degree=2, lead_lines=4)
        prefetcher.accept_hint(0x10000, 64 * LINE)
        issued = prefetcher.observe(0x10000, 0, False)
        issued += prefetcher.observe(0x10000, 0, False)
        # Frontier stops at demand + lead even with budget left.
        assert max(issued) <= 0x10000 + 4 * LINE

    def test_degree_caps_rate(self):
        prefetcher = HintedRegionPrefetcher(degree=3, lead_lines=32)
        prefetcher.accept_hint(0x10000, 64 * LINE)
        assert len(prefetcher.observe(0x10000, 0, False)) == 3

    def test_region_table_overflow_drops_oldest(self):
        prefetcher = HintedRegionPrefetcher(max_regions=2)
        for i in range(3):
            prefetcher.accept_hint(0x10000 + i * 0x10000, 4 * KB)
        assert prefetcher.active_regions == 2
        assert prefetcher.hints_dropped == 1

    def test_zero_length_hint_ignored(self):
        prefetcher = HintedRegionPrefetcher()
        prefetcher.accept_hint(0x1000, 0)
        assert prefetcher.active_regions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HintedRegionPrefetcher(degree=0)

    def test_reset(self):
        prefetcher = HintedRegionPrefetcher()
        prefetcher.accept_hint(0x1000, 4 * KB)
        prefetcher.reset()
        assert prefetcher.active_regions == 0


class TestHintPlumbing:
    def test_bank_dispatches_hints(self):
        hinted = HintedRegionPrefetcher()
        bank = PrefetcherBank([hinted])
        assert bank.accept_hint(0x1000, 4 * KB)
        assert hinted.hints_accepted == 1

    def test_legacy_bank_ignores_hints(self):
        bank = PrefetcherBank([NextLinePrefetcher(page_filter_entries=None)])
        assert not bank.accept_hint(0x1000, 4 * KB)

    def test_disabled_prefetcher_ignores_hints(self):
        hinted = HintedRegionPrefetcher()
        hinted.enabled = False
        bank = PrefetcherBank([hinted])
        assert not bank.accept_hint(0x1000, 4 * KB)

    def test_hierarchy_executes_hint_records(self):
        hinted = HintedRegionPrefetcher()
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([hinted]))
        trace = Trace([MemoryAccess(address=0x10000, size=4 * KB,
                                    kind=AccessKind.STREAM_HINT,
                                    function="f")])
        result = hierarchy.run(trace)
        assert hinted.hints_accepted == 1
        assert result.total.software_prefetches == 1
        assert result.total.stall_cycles == 0  # hints never stall


class TestHintInjection:
    def test_injector_emits_one_hint_per_stream(self):
        trace = memcpy_trace(0x10000, 0x90000, 64 * KB)
        injector = SoftwarePrefetchInjector(
            [PrefetchDescriptor("memcpy", min_size_bytes=2 * KB)],
            emit_hints=True)
        out = injector.inject(trace)
        hints = [r for r in out if r.kind is AccessKind.STREAM_HINT]
        assert len(hints) == 2  # one each for the load and store streams
        assert all(h.size == 64 * KB for h in hints)
        assert injector.last_stats.prefetches_inserted == 2

    def test_size_gate_applies_to_hints(self):
        trace = memcpy_trace(0x10000, 0x90000, 256)
        injector = SoftwarePrefetchInjector(
            [PrefetchDescriptor("memcpy", min_size_bytes=2 * KB)],
            emit_hints=True)
        out = injector.inject(trace)
        assert not [r for r in out if r.kind is AccessKind.STREAM_HINT]

    def test_hinted_beats_instruction_prefetching_on_large_copies(self):
        """The Section 8.3 thesis: one hint, hardware pacing — faster
        than thousands of prefetch instructions, with no overshoot."""
        descriptor = PrefetchDescriptor("memcpy", distance_bytes=512,
                                        degree_bytes=256,
                                        min_size_bytes=2 * KB)
        trace = memcpy_trace(0x100000, 0x900000, 128 * KB)

        sw_trace = SoftwarePrefetchInjector([descriptor]).inject(trace)
        hint_trace = SoftwarePrefetchInjector(
            [descriptor], emit_hints=True).inject(trace)

        sw_result = MemoryHierarchy(
            prefetchers=PrefetcherBank([])).run(sw_trace)
        hint_result = MemoryHierarchy(prefetchers=PrefetcherBank(
            [HintedRegionPrefetcher()])).run(hint_trace)

        assert hint_result.elapsed_ns < sw_result.elapsed_ns
        assert (hint_result.total.software_prefetches
                < 0.01 * sw_result.total.software_prefetches)
        # No overshoot: every fetched line belongs to the copy.
        assert hint_result.dram_prefetch_fills <= 2 * (128 * KB // 64)
