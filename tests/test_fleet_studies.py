"""Integration tests: ablation and rollout studies reproduce the paper's
qualitative results (small fleets for speed; benchmarks use larger ones)."""

import pytest

from repro.errors import ConfigError
from repro.fleet import AblationStudy, RolloutStudy
from repro.workloads import TAX_CATEGORIES
from repro.workloads.functions import FUNCTION_ROSTER


@pytest.fixture(scope="module")
def off_result():
    return AblationStudy(mode="off", machines=10, epochs=40,
                         warmup_epochs=15, seed=9).run()


@pytest.fixture(scope="module")
def full_result():
    return AblationStudy(mode="hard+soft", machines=10, epochs=40,
                         warmup_epochs=15, seed=9).run()


@pytest.fixture(scope="module")
def rollout_result():
    return RolloutStudy(machines=12, epochs=40, warmup_epochs=15,
                        seed=5).run()


class TestAblationOff:
    """Disabling prefetchers fleet-wide (Table 1, Figures 11/12)."""

    def test_bandwidth_drops(self, off_result):
        reduction = off_result.bandwidth_reduction()
        assert -0.30 < reduction["mean"] < -0.05  # paper: -11% to -16%
        assert reduction["p99"] < 0
        assert reduction["peak"] < 0.02

    def test_latency_drops(self, off_result):
        reduction = off_result.latency_reduction()
        assert reduction["p50"] < -0.03  # paper: ~-15%

    def test_average_throughput_drops(self, off_result):
        """Paper: ~5% average performance drop when ablating fleet-wide."""
        assert -0.20 < off_result.throughput_change() < -0.01

    def test_tax_functions_regress_nontax_improve(self, off_result):
        deltas = off_result.function_cycle_deltas()
        # memmove/memset have small calibrated penalties (their streams are
        # store-dominated), so the fleet latency win can net them out —
        # Figure 11 likewise shows some movement variants not regressing.
        borderline = {"memmove", "memset", "misc_streaming"}
        for name, profile in FUNCTION_ROSTER.items():
            if name not in deltas or name in borderline:
                continue
            if profile.category in TAX_CATEGORIES:
                assert deltas[name] > 0.02, name
            else:
                assert deltas[name] < 0.02, name

    def test_tax_mpki_explodes(self, off_result):
        deltas = off_result.function_mpki_deltas()
        assert deltas["memcpy"] > 2.0
        assert abs(deltas["pointer_chase"]) < 0.1


class TestFullLimoncello:
    """Hard + Soft Limoncello vs no Limoncello."""

    def test_throughput_improves(self, full_result):
        assert full_result.throughput_change() > 0.005

    def test_bandwidth_and_latency_drop(self, full_result):
        assert full_result.bandwidth_reduction()["mean"] < 0
        assert full_result.latency_reduction()["p50"] < 0

    def test_beats_plain_ablation(self, off_result, full_result):
        assert (full_result.throughput_change()
                > off_result.throughput_change())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            AblationStudy(mode="sideways")


class TestRollout:
    def test_cpu_utilization_increases(self, rollout_result):
        """Figure 19: Limoncello converts bandwidth headroom into CPU."""
        assert rollout_result.cpu_utilization_gain() > 0
        assert (rollout_result.full_integrated.cpu_utilization_mean()
                > rollout_result.before.cpu_utilization_mean())

    def test_throughput_gains_non_negative_everywhere(self, rollout_result):
        gains = rollout_result.throughput_gain_by_band()
        assert gains, "CPU bands must be populated"
        for band, gain in gains.items():
            assert gain > -0.01, band

    def test_tax_cycle_story(self, rollout_result):
        """Figure 20: Hard-only inflates tax cycles; Soft recovers them."""
        shares = rollout_result.tax_cycle_shares()
        none = shares["none"]["all targeted DC tax"]
        hard = shares["hard"]["all targeted DC tax"]
        full = shares["full"]["all targeted DC tax"]
        assert hard > none
        assert full < hard
        assert full == pytest.approx(none, abs=0.05)

    def test_bandwidth_vs_cpu_buckets_shift_right(self, rollout_result):
        curves = rollout_result.bandwidth_vs_cpu()
        def top_bucket(curve):
            return max(int(k.split("-")[0]) for k in curve)
        assert top_bucket(curves["after"]) >= top_bucket(curves["before"])

    def test_validation(self):
        with pytest.raises(ConfigError):
            RolloutStudy(epochs=0)
        with pytest.raises(ConfigError):
            RolloutStudy(warmup_epochs=-1)
