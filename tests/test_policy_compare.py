"""Head-to-head policy comparison: determinism and the training gate.

The report digest must be bit-identical across reruns and worker
counts (the ``repro policy compare --compare-serial`` contract), and
the offline-trained tree must match or beat the hysteresis baseline on
band-oracle duty-cycle error — the claim the CI policy gate enforces
on the benched configuration.
"""

import pytest

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.policy import (EpsilonGreedyBanditPolicy, HysteresisPolicy,
                          PolicyComparison, SingleThresholdPolicy,
                          comparison_digest, policy_digest,
                          train_decision_tree_policy)
from repro.units import SECOND

_CONFIG = LimoncelloConfig(sample_period_ns=10 * SECOND,
                           sustain_duration_ns=30 * SECOND)

_POLICIES = {
    "hysteresis": HysteresisPolicy(_CONFIG),
    "single-threshold": SingleThresholdPolicy(threshold=0.8),
    "bandit": EpsilonGreedyBanditPolicy(seed=3, epsilon=0.1),
}


def _comparison(policies=None, **overrides):
    kwargs = dict(machines=6, epochs=10, warmup_epochs=2, seed=7,
                  config=_CONFIG)
    kwargs.update(overrides)
    return PolicyComparison(policies or _POLICIES, **kwargs)


class TestComparisonDeterminism:
    def test_rerun_digest_identical(self):
        first = _comparison().run()
        second = _comparison().run()
        assert comparison_digest(first) == comparison_digest(second)

    def test_workers_do_not_change_the_report(self):
        serial = _comparison(shard_size=3).run(workers=1, cache_dir="",
                                               checkpoint_dir="")
        sharded = _comparison(shard_size=3).run(workers=2, cache_dir="",
                                                checkpoint_dir="")
        assert comparison_digest(serial) == comparison_digest(sharded)

    def test_report_shape(self):
        report = _comparison().run()
        assert report["study"] == "policy-compare"
        assert set(report["policies"]) == set(_POLICIES)
        assert sorted(report["ranking"]) == sorted(_POLICIES)
        for entry in report["policies"].values():
            assert entry["samples"] > 0
            assert 0.0 <= entry["duty_cycle_error"] <= 1.0
            assert "policy_digest" in entry

    def test_ranking_orders_by_duty_cycle_error(self):
        report = _comparison().run()
        errors = [report["policies"][name]["duty_cycle_error"]
                  for name in report["ranking"]]
        assert errors == sorted(errors)

    def test_faulted_leg_reports_robustness(self):
        plan = FaultPlan.parse("seed=3;machine-crash:rate=0.05")
        report = _comparison(
            policies={"hysteresis": HysteresisPolicy(_CONFIG)},
            machines=4, epochs=8, fault_plan=plan).run()
        faulted = report["policies"]["hysteresis"]["faulted"]
        assert 0.0 <= faulted["availability"] <= 1.0
        assert "duty_cycle_drift" in faulted
        assert report["fault_plan"] == plan.spec()

    def test_empty_policy_set_rejected(self):
        with pytest.raises(ConfigError):
            PolicyComparison({})


class TestTrainedTreeGate:
    @pytest.fixture(scope="class")
    def report(self):
        tree = train_decision_tree_policy(
            machines=8, epochs=16, warmup_epochs=4, seed=11,
            config=_CONFIG, probe_machines=2, probe_scale=0.25)
        policies = dict(_POLICIES)
        policies["decision-tree"] = tree
        return _comparison(policies=policies, machines=8,
                           epochs=16, warmup_epochs=4, seed=11).run()

    def test_tree_matches_or_beats_hysteresis_duty_cycle_error(
            self, report):
        """The offline-distilled per-sample tree cannot do worse than
        the sustain-delayed hysteresis baseline on the band oracle."""
        tree_error = report["policies"]["decision-tree"]["duty_cycle_error"]
        hyst_error = report["policies"]["hysteresis"]["duty_cycle_error"]
        assert tree_error <= hyst_error

    def test_training_is_reproducible(self, report):
        retrained = train_decision_tree_policy(
            machines=8, epochs=16, warmup_epochs=4, seed=11,
            config=_CONFIG, probe_machines=2, probe_scale=0.25)
        assert report["policies"]["decision-tree"]["policy_digest"] \
            == policy_digest(retrained)
