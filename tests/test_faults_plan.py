"""Tests for fault-plan parsing, validation, and seeding."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    fault_rng,
    fault_seed,
)
from repro.units import SECOND


class TestParsing:
    def test_single_clause(self):
        plan = FaultPlan.parse("telemetry-drop:rate=0.25")
        assert plan.kinds == ("telemetry-drop",)
        assert plan.clause("telemetry-drop").param("rate") == 0.25
        assert plan.seed == 0

    def test_multiple_clauses_and_seed(self):
        plan = FaultPlan.parse(
            "seed=42;telemetry-drop:rate=0.1;msr-transient:rate=0.3")
        assert plan.seed == 42
        assert plan.kinds == ("telemetry-drop", "msr-transient")

    def test_defaults_fill_in(self):
        plan = FaultPlan.parse("machine-crash:rate=0.05")
        clause = plan.clause("machine-crash")
        assert clause.param("outage") == 2.0
        assert clause.param("restart") == "enabled"

    def test_time_parameters_convert_to_ns(self):
        plan = FaultPlan.parse("telemetry-blackout:start=120,duration=60")
        clause = plan.clause("telemetry-blackout")
        assert clause.time_ns("start") == 120 * SECOND
        assert clause.time_ns("duration") == 60 * SECOND

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" telemetry-drop: rate = 0.1 ; "
                               "telemetry-nan: rate = 0.2 ")
        assert plan.clause("telemetry-nan").param("rate") == 0.2

    def test_spec_round_trips(self):
        spec = ("seed=7;machine-crash:outage=3.0,rate=0.02,"
                "restart=preserved;telemetry-skew:offset=1.5")
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_has_and_missing_clause(self):
        plan = FaultPlan.parse("telemetry-drop:rate=0.1")
        assert plan.has("telemetry-drop")
        assert not plan.has("msr-transient")
        assert plan.clause("msr-transient") is None


class TestValidation:
    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("")
        with pytest.raises(ConfigError):
            FaultPlan.parse(" ; ")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultPlan.parse("telemetry-explode:rate=0.1")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError, match="no parameters"):
            FaultPlan.parse("telemetry-drop:rate=0.1,color=red")

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ConfigError, match="requires parameter"):
            FaultPlan.parse("telemetry-drop")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("telemetry-drop:rate=1.0")
        with pytest.raises(ConfigError):
            FaultPlan.parse("telemetry-drop:rate=-0.1")

    def test_bad_restart_policy_rejected(self):
        with pytest.raises(ConfigError, match="restart policy"):
            FaultPlan.parse("machine-crash:rate=0.1,restart=sideways")

    def test_count_parameters_must_be_integers(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("msr-permanent:after=1.5")
        plan = FaultPlan.parse("msr-permanent:after=3")
        assert plan.clause("msr-permanent").param("after") == 3.0

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan.parse("telemetry-drop:rate=0.1;telemetry-drop:rate=0.2")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ConfigError, match="key=value"):
            FaultPlan.parse("telemetry-drop:rate")

    def test_non_numeric_seed_rejected(self):
        with pytest.raises(ConfigError, match="seed"):
            FaultPlan.parse("seed=lots;telemetry-drop:rate=0.1")


class TestSeeding:
    def test_fault_seed_is_stable(self):
        assert fault_seed(1, 2, "machine-0", "crash") == \
            fault_seed(1, 2, "machine-0", "crash")

    def test_fault_seed_distinguishes_parts(self):
        base = fault_seed(1, 2, "machine-0", "crash")
        assert fault_seed(1, 2, "machine-0", "telemetry:0") != base
        assert fault_seed(1, 3, "machine-0", "crash") != base
        assert fault_seed(1, 2, "machine-1", "crash") != base

    def test_fault_rng_reproduces(self):
        a = [fault_rng(5, "x").random() for _ in range(4)]
        b = [fault_rng(5, "x").random() for _ in range(4)]
        assert a == b

    def test_key_material_is_plain_data(self):
        plan = FaultPlan.parse("seed=2;telemetry-drop:rate=0.1")
        material = plan.to_key_material()
        assert material == {
            "seed": 2,
            "clauses": [{"kind": "telemetry-drop",
                         "params": {"rate": 0.1}}],
        }
