"""Tests for repro.units."""

import pytest

from repro import units


class TestSizes:
    def test_kb_mb_gb_ratios(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB

    def test_cache_line_is_64_bytes(self):
        assert units.CACHE_LINE_BYTES == 64


class TestTime:
    def test_second_in_ns(self):
        assert units.SECOND == 1e9

    def test_seconds_round_trip(self):
        assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)

    def test_minute(self):
        assert units.MINUTE == 60 * units.SECOND


class TestBandwidth:
    def test_gb_per_s_is_identity(self):
        assert units.gb_per_s(3.0) == 3.0
        assert units.to_gb_per_s(3.0) == 3.0


class TestCacheLines:
    def test_exact_multiple(self):
        assert units.cache_lines(128) == 2

    def test_rounds_up(self):
        assert units.cache_lines(1) == 1
        assert units.cache_lines(65) == 2

    def test_zero_bytes_is_zero_lines(self):
        assert units.cache_lines(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.cache_lines(-1)

    def test_custom_line_size(self):
        assert units.cache_lines(256, line_bytes=128) == 2


class TestLineAddress:
    def test_aligned_address_unchanged(self):
        assert units.line_address(0x1000) == 0x1000

    def test_rounds_down(self):
        assert units.line_address(0x1001) == 0x1000
        assert units.line_address(0x103F) == 0x1000
        assert units.line_address(0x1040) == 0x1040
