"""Every workload generator must be deterministic given its seed —
the foundation of the paired-experiment methodology."""

import random

import pytest

from repro.access import AddressSpace
from repro.workloads import (
    FUNCTION_ROSTER,
    SPEC_SUITE,
    database_server,
    fleetbench_trace,
    ml_model_server,
    search_backend,
    suite_trace,
)


def twice(build):
    """Build the same artifact twice from identical seeds."""
    return (build(random.Random(123), AddressSpace()),
            build(random.Random(123), AddressSpace()))


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(FUNCTION_ROSTER))
    def test_roster_functions(self, name):
        profile = FUNCTION_ROSTER[name]
        a, b = twice(lambda rng, space: profile.trace(rng, space, scale=0.3))
        assert a == b

    @pytest.mark.parametrize("factory", [search_backend, ml_model_server,
                                         database_server])
    def test_applications(self, factory):
        app = factory()
        a, b = twice(lambda rng, space: app.request_trace(rng, space,
                                                          scale=0.2))
        assert a == b

    @pytest.mark.parametrize("spec_member", SPEC_SUITE,
                             ids=lambda member: member.name)
    def test_spec_members(self, spec_member):
        a, b = twice(lambda rng, space: spec_member.trace(rng, space,
                                                          scale=0.2))
        assert a == b

    def test_spec_suite(self):
        a, b = twice(lambda rng, space: suite_trace(rng, space, scale=0.2))
        assert a == b

    def test_fleet_mix(self):
        a, b = twice(lambda rng, space: fleetbench_trace(rng, space,
                                                         scale=0.4))
        assert a == b

    def test_different_seeds_differ(self):
        a = fleetbench_trace(random.Random(1), AddressSpace(), scale=0.4)
        b = fleetbench_trace(random.Random(2), AddressSpace(), scale=0.4)
        assert a != b
