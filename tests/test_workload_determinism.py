"""Every workload generator must be deterministic given its seed —
the foundation of the paired-experiment methodology."""

import random

import pytest

from repro.access import AddressSpace
from repro.workloads import (
    FUNCTION_ROSTER,
    SPEC_SUITE,
    database_server,
    fleetbench_trace,
    ml_model_server,
    search_backend,
    suite_trace,
)


def twice(build):
    """Build the same artifact twice from identical seeds."""
    return (build(random.Random(123), AddressSpace()),
            build(random.Random(123), AddressSpace()))


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(FUNCTION_ROSTER))
    def test_roster_functions(self, name):
        profile = FUNCTION_ROSTER[name]
        a, b = twice(lambda rng, space: profile.trace(rng, space, scale=0.3))
        assert a == b

    @pytest.mark.parametrize("factory", [search_backend, ml_model_server,
                                         database_server])
    def test_applications(self, factory):
        app = factory()
        a, b = twice(lambda rng, space: app.request_trace(rng, space,
                                                          scale=0.2))
        assert a == b

    @pytest.mark.parametrize("spec_member", SPEC_SUITE,
                             ids=lambda member: member.name)
    def test_spec_members(self, spec_member):
        a, b = twice(lambda rng, space: spec_member.trace(rng, space,
                                                          scale=0.2))
        assert a == b

    def test_spec_suite(self):
        a, b = twice(lambda rng, space: suite_trace(rng, space, scale=0.2))
        assert a == b

    def test_fleet_mix(self):
        a, b = twice(lambda rng, space: fleetbench_trace(rng, space,
                                                         scale=0.4))
        assert a == b

    def test_different_seeds_differ(self):
        a = fleetbench_trace(random.Random(1), AddressSpace(), scale=0.4)
        b = fleetbench_trace(random.Random(2), AddressSpace(), scale=0.4)
        assert a != b


class TestDefaultRngDecorrelation:
    """Regression: every irregular generator used to default to
    ``random.Random(0)``, so two *different* generators produced
    identical uniform draws — correlated address streams whenever a
    caller omitted ``rng``. Defaults are now namespaced per generator
    via BLAKE2b (``workload_seed``)."""

    def _offsets(self, trace, limit=64):
        # Compare line offsets relative to the first address: the two
        # generators allocate from separate address spaces, so raw
        # addresses could differ even with correlated draws.
        addresses = [record.address for record in trace][:limit]
        return [address - addresses[0] for address in addresses]

    def test_workload_seed_is_stable_and_namespaced(self):
        from repro.workloads.irregular import workload_seed

        assert workload_seed("pointer_chase") == workload_seed("pointer_chase")
        names = ["pointer_chase", "random_access", "btree_lookup",
                 "misc_streaming", "hashmap_probe"]
        seeds = [workload_seed(name) for name in names]
        assert len(set(seeds)) == len(seeds)
        assert all(0 <= seed < 2 ** 63 for seed in seeds)

    def test_default_streams_are_decorrelated(self):
        from repro.workloads.irregular import (hashmap_probe_trace,
                                               pointer_chase_trace)

        chase = pointer_chase_trace(AddressSpace(), 1 << 22, 64)
        probe = hashmap_probe_trace(AddressSpace(), 32, table_bytes=1 << 22)
        assert self._offsets(chase) != self._offsets(probe)

    def test_random_access_default_differs_from_pointer_chase(self):
        # random_access_trace delegates to pointer_chase_trace; an
        # omitted rng must still follow its *own* namespaced stream.
        from repro.workloads.irregular import (pointer_chase_trace,
                                               random_access_trace)

        chase = pointer_chase_trace(AddressSpace(), 1 << 22, 64)
        random_access = random_access_trace(AddressSpace(), 1 << 22, 64)
        assert self._offsets(chase) != self._offsets(random_access)

    def test_defaults_stay_deterministic(self):
        from repro.workloads.irregular import btree_lookup_trace

        assert btree_lookup_trace(AddressSpace(), 16) == \
            btree_lookup_trace(AddressSpace(), 16)
