"""Property-based equivalence: the lockstep engine on arbitrary traces.

Hypothesis drives :func:`repro.memsys.run_many` with random record
mixes, arm fleets, and batch sizes, and asserts the batched path is
bit-identical to per-arm scalar runs — the same everything-observable
comparison the golden suite makes, minimized automatically when a
counterexample exists.
"""

import pytest
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.access import AccessKind, MemoryAccess, Trace
from repro.memsys import (
    ConstantExternalLoad,
    MemoryHierarchy,
    PrefetcherBank,
    run_many,
)
from repro.memsys import batched

from tests.test_batched_engine import exotic_bank, snapshot

pytestmark = pytest.mark.skipif(not batched.HAVE_NUMPY,
                                reason="lockstep engine needs numpy")

record_strategy = st.builds(
    MemoryAccess,
    address=st.integers(min_value=0, max_value=1 << 22),
    size=st.integers(min_value=1, max_value=512),
    kind=st.sampled_from((AccessKind.LOAD, AccessKind.STORE,
                          AccessKind.SOFTWARE_PREFETCH,
                          AccessKind.STREAM_HINT)),
    pc=st.integers(min_value=0, max_value=9),
    function=st.sampled_from(("alpha", "beta", "gamma")),
    gap_cycles=st.integers(min_value=0, max_value=30),
)

records_strategy = st.lists(record_strategy, max_size=100)

# None mixed with constant loads: both are lockstep-eligible and must
# co-batch (an absent load is bit-equal to a zero-rate one only in the
# formula's limit, so the engine carries the distinction per arm).
loads_strategy = st.lists(
    st.one_of(st.none(),
              st.floats(min_value=0.0, max_value=4.0,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=7)


#: Per-arm hardware-bank shapes the property fleets mix: ablated,
#: the stock default bank, and a hinted/feedback/stream composite —
#: all lockstep-safe, so mixed fleets exercise the grouping logic.
BANK_SHAPES = ("empty", "default", "exotic")


def _build_bank(shape):
    if shape == "empty":
        return PrefetcherBank([])
    if shape == "exotic":
        return exotic_bank()
    return None  # the hierarchy's default bank


def build_arms(loads, banks=None):
    return [
        MemoryHierarchy(
            prefetchers=_build_bank(banks[index] if banks else "empty"),
            external_load=None if load is None
            else ConstantExternalLoad(load))
        for index, load in enumerate(loads)
    ]


def assert_fleet_agrees(records, loads, batch_size, split=None,
                        banks=None):
    if split is None:
        traces = [Trace(records)]
    else:
        traces = [Trace(records[:split]), Trace(records[split:])]
    scalar_arms = build_arms(loads, banks)
    batched_arms = build_arms(loads, banks)
    for trace in traces:
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        batched_results = run_many(batched_arms, trace,
                                   batch_size=batch_size)
        for arm in range(len(loads)):
            assert (snapshot(batched_arms[arm], batched_results[arm])
                    == snapshot(scalar_arms[arm], scalar_results[arm]))


class TestPropertyEquivalence:
    @given(records=records_strategy, loads=loads_strategy,
           batch_size=st.integers(min_value=1, max_value=8))
    @settings(max_examples=scaled(40), deadline=None)
    def test_random_fleets(self, records, loads, batch_size):
        assert_fleet_agrees(records, loads, batch_size)

    @given(records=records_strategy, loads=loads_strategy,
           batch_size=st.integers(min_value=1, max_value=8),
           split=st.integers(min_value=0, max_value=100))
    @settings(max_examples=scaled(25), deadline=None)
    def test_warm_continuation(self, records, loads, batch_size, split):
        assert_fleet_agrees(records, loads, batch_size,
                            split=min(split, len(records)))

    @given(records=records_strategy,
           loads=st.lists(st.floats(min_value=0.0, max_value=2.0,
                                    allow_nan=False, allow_infinity=False),
                          min_size=2, max_size=5))
    @settings(max_examples=scaled(20), deadline=None)
    def test_env_default_batch(self, records, loads):
        """batch_size=None (the study-layer default) also agrees —
        under whatever REPRO_BATCH the environment pins."""
        assert_fleet_agrees(records, loads, None)


#: One (load, bank-shape) pair per arm, so fleets mix ablated and
#: enabled arms and the engine must group them correctly.
enabled_arms_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(),
                  st.floats(min_value=0.0, max_value=4.0,
                            allow_nan=False, allow_infinity=False)),
        st.sampled_from(BANK_SHAPES)),
    min_size=1, max_size=5)


class TestEnabledBankProperties:
    """The tentpole property: enabled-prefetcher arms batch bit-exactly.

    Fleets mix empty, default, and hinted/feedback banks, so lockstep
    groups form per (config signature, training fingerprint) and every
    group's clone-trained prefetcher state must match the scalar oracle.
    """

    @given(records=records_strategy, arms=enabled_arms_strategy,
           batch_size=st.integers(min_value=1, max_value=8))
    @settings(max_examples=scaled(30), deadline=None)
    def test_random_enabled_fleets(self, records, arms, batch_size):
        loads = [load for load, _ in arms]
        banks = [bank for _, bank in arms]
        assert_fleet_agrees(records, loads, batch_size, banks=banks)

    @given(records=records_strategy, arms=enabled_arms_strategy,
           batch_size=st.integers(min_value=1, max_value=8),
           split=st.integers(min_value=0, max_value=100))
    @settings(max_examples=scaled(20), deadline=None)
    def test_warm_enabled_continuation(self, records, arms, batch_size,
                                       split):
        """Epoch two regroups on *trained* fingerprints; warm prefetcher
        state exported from epoch one must still match scalar."""
        loads = [load for load, _ in arms]
        banks = [bank for _, bank in arms]
        assert_fleet_agrees(records, loads, batch_size,
                            split=min(split, len(records)), banks=banks)
