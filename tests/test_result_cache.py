"""Tests for the on-disk study result cache and its corruption guard."""

import json

import pytest

from repro.fleet import AblationStudy, StudyResultCache, study_cache
from repro.fleet.result_cache import CACHE_ENV_VAR, SCHEMA_VERSION
from repro.serialization import ablation_result_to_dict

MATERIAL = {"study": "demo", "machines": 4, "seed": 1}
PAYLOAD = {"answer": 42, "rows": [1.5, 2.5]}


@pytest.fixture
def cache(tmp_path):
    return StudyResultCache(tmp_path / "cache")


class TestRawStore:
    def test_miss_on_empty_cache(self, cache):
        assert cache.load(MATERIAL) is None

    def test_round_trip(self, cache):
        cache.store(MATERIAL, PAYLOAD)
        assert cache.load(MATERIAL) == PAYLOAD

    def test_different_material_different_key(self, cache):
        cache.store(MATERIAL, PAYLOAD)
        assert cache.load({**MATERIAL, "seed": 2}) is None
        assert cache.key_for(MATERIAL) != cache.key_for(
            {**MATERIAL, "seed": 2})

    def test_key_ignores_dict_ordering(self, cache):
        reordered = {"seed": 1, "machines": 4, "study": "demo"}
        assert cache.key_for(MATERIAL) == cache.key_for(reordered)

    def test_overwrite(self, cache):
        cache.store(MATERIAL, PAYLOAD)
        cache.store(MATERIAL, {"answer": 43})
        assert cache.load(MATERIAL) == {"answer": 43}


class TestCorruptionGuard:
    def test_truncated_entry_is_a_miss(self, cache):
        path = cache.store(MATERIAL, PAYLOAD)
        path.write_text(path.read_text()[:25])
        assert cache.load(MATERIAL) is None

    def test_tampered_payload_fails_digest(self, cache):
        path = cache.store(MATERIAL, PAYLOAD)
        entry = json.loads(path.read_text())
        entry["payload"]["answer"] = 41  # bit-rot / manual edit
        path.write_text(json.dumps(entry))
        assert cache.load(MATERIAL) is None

    def test_stale_schema_is_a_miss(self, cache):
        path = cache.store(MATERIAL, PAYLOAD)
        entry = json.loads(path.read_text())
        entry["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(entry))
        assert cache.load(MATERIAL) is None

    def test_entry_under_wrong_name_is_a_miss(self, cache):
        """An entry copied to another key's filename is detected."""
        source = cache.store(MATERIAL, PAYLOAD)
        target = cache.path_for({**MATERIAL, "seed": 2})
        target.write_text(source.read_text())
        assert cache.load({**MATERIAL, "seed": 2}) is None

    def test_non_dict_entry_is_a_miss(self, cache):
        path = cache.path_for(MATERIAL)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(["not", "an", "entry"]))
        assert cache.load(MATERIAL) is None

    def test_recompute_overwrites_corrupt_entry(self, cache):
        path = cache.store(MATERIAL, PAYLOAD)
        path.write_text("garbage")
        assert cache.load(MATERIAL) is None
        cache.store(MATERIAL, PAYLOAD)
        assert cache.load(MATERIAL) == PAYLOAD


class TestEviction:
    def test_prune_keeps_newest(self, tmp_path):
        cache = StudyResultCache(tmp_path, max_entries=3)
        import os
        for i in range(5):
            path = cache.store({"i": i}, {"value": i})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        cache.prune()
        assert cache.load({"i": 0}) is None
        assert cache.load({"i": 1}) is None
        for i in (2, 3, 4):
            assert cache.load({"i": i}) == {"value": i}


class TestStudyCacheResolution:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert study_cache(None) is None

    def test_env_var_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        cache = study_cache(None)
        assert cache is not None
        assert cache.root == tmp_path

    def test_explicit_dir_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, "/nonexistent/elsewhere")
        cache = study_cache(tmp_path)
        assert cache.root == tmp_path


class TestAblationStudyCaching:
    def _study(self):
        return AblationStudy(mode="off", machines=6, epochs=8,
                             warmup_epochs=2, seed=3)

    def test_second_run_hits_cache(self, tmp_path):
        first = self._study().run(cache_dir=tmp_path)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        before = entries[0].read_text()
        second = self._study().run(cache_dir=tmp_path)
        assert entries[0].read_text() == before  # untouched, not rewritten
        assert (ablation_result_to_dict(first)
                == ablation_result_to_dict(second))

    def test_cached_result_reproduces_every_view(self, tmp_path):
        first = self._study().run(cache_dir=tmp_path)
        second = self._study().run(cache_dir=tmp_path)
        assert second.bandwidth_reduction() == first.bandwidth_reduction()
        assert second.function_cycle_deltas() == first.function_cycle_deltas()
        assert second.throughput_change() == first.throughput_change()

    def test_corrupt_entry_recomputed_not_crashed(self, tmp_path):
        first = self._study().run(cache_dir=tmp_path)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text(entry.read_text()[:50])  # truncated write
        recomputed = self._study().run(cache_dir=tmp_path)
        assert (ablation_result_to_dict(recomputed)
                == ablation_result_to_dict(first))
        # and the entry was healed for the next reader
        cache = StudyResultCache(tmp_path)
        material = self._study().cache_key_material()
        assert cache.load(material) is not None

    def test_semantically_broken_payload_is_recomputed(self, tmp_path):
        study = self._study()
        first = study.run(cache_dir=tmp_path)
        cache = StudyResultCache(tmp_path)
        material = study.cache_key_material()
        payload = cache.load(material)
        del payload["control"]  # valid JSON + digest, wrong shape
        cache.store(material, payload)
        recomputed = self._study().run(cache_dir=tmp_path)
        assert (ablation_result_to_dict(recomputed)
                == ablation_result_to_dict(first))

    def test_key_excludes_workers(self):
        """Worker count cannot appear in the key: results are identical
        at any parallelism, so a serial run must hit a parallel run's
        cache entry."""
        material = self._study().cache_key_material()
        assert "workers" not in json.dumps(material)

    def test_different_mode_different_entry(self, tmp_path):
        self._study().run(cache_dir=tmp_path)
        AblationStudy(mode="hard", machines=6, epochs=8, warmup_epochs=2,
                      seed=3).run(cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestStatsSidecar:
    def test_counters_accumulate(self, cache):
        cache.store(MATERIAL, PAYLOAD)          # store
        cache.load(MATERIAL)                    # hit
        cache.load({**MATERIAL, "seed": 99})    # miss
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_miss_before_first_store_is_not_recorded(self, cache):
        """Counters are best-effort and never create the cache
        directory: probing a cache that was never written leaves no
        trace on disk."""
        cache.load(MATERIAL)
        assert not cache.root.exists()
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}

    def test_counters_survive_reopen(self, cache):
        cache.store(MATERIAL, PAYLOAD)
        cache.load(MATERIAL)
        reopened = StudyResultCache(cache.root)
        assert reopened.stats() == {"hits": 1, "misses": 0, "stores": 1}

    def test_sidecar_is_not_an_entry(self, cache):
        """The stats file must never be scanned, pruned, or restored as
        if it were a cached result."""
        cache.store(MATERIAL, PAYLOAD)
        cache.load(MATERIAL)
        scan = cache.scan()
        assert scan["entries"] == 1 and scan["corrupt"] == 0
        cache.prune(0)
        assert cache.stats()["stores"] == 1  # sidecar survived the prune

    def test_missing_sidecar_reads_as_zero(self, cache):
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0}


class TestScan:
    def test_empty_directory(self, cache):
        assert cache.scan() == {"entries": 0, "bytes": 0, "valid": 0,
                                "corrupt": 0}

    def test_counts_valid_and_corrupt(self, cache):
        good = cache.store(MATERIAL, PAYLOAD)
        bad = cache.store({**MATERIAL, "seed": 2}, PAYLOAD)
        bad.write_text("garbage")
        scan = cache.scan()
        assert scan["entries"] == 2
        assert scan["valid"] == 1 and scan["corrupt"] == 1
        assert scan["bytes"] >= good.stat().st_size


class TestEvictionControls:
    def test_max_entries_none_never_evicts(self, tmp_path):
        cache = StudyResultCache(tmp_path, max_entries=None)
        for i in range(300):
            cache.store({"i": i}, {"value": i})
        cache.prune()
        assert cache.scan()["entries"] == 300

    def test_prune_call_level_override(self, tmp_path):
        import os
        cache = StudyResultCache(tmp_path, max_entries=None)
        for i in range(5):
            path = cache.store({"i": i}, {"value": i})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        removed = cache.prune(2)
        assert removed == 3
        assert cache.scan()["entries"] == 2
        assert cache.load({"i": 4}) == {"value": 4}


class TestEmbeddedMaterial:
    def test_store_embeds_material_on_request(self, cache):
        path = cache.store(MATERIAL, PAYLOAD, embed_material=True)
        entry = json.loads(path.read_text())
        assert entry["material"] == MATERIAL
        assert cache.load(MATERIAL) == PAYLOAD

    def test_default_store_omits_material(self, cache):
        path = cache.store(MATERIAL, PAYLOAD)
        assert "material" not in json.loads(path.read_text())
