"""Tests for parallel sharded execution: worker resolution, the pool
runner, and — the engine's core guarantee — parallel results identical
to serial results for the same seed."""

import pytest

from repro.errors import ConfigError
from repro.fleet import AblationStudy, Fleet, RolloutStudy
from repro.fleet.ablation import run_ablation_shard
from repro.fleet.parallel import (
    BATCH_ENV_VAR,
    DEFAULT_BATCH_SIZE,
    WORKERS_ENV_VAR,
    resolve_engine,
    resolve_workers,
    run_sharded,
)
from repro.serialization import (
    ablation_result_to_dict,
    fleet_metrics_to_dict,
    profile_data_to_dict,
)


def _square(value):
    """Module-level worker so the process pool can pickle it."""
    return value * value


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers(None) == 5

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_workers(-2)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ConfigError, match=WORKERS_ENV_VAR):
            resolve_workers(None)

    def test_env_zero_rejected(self, monkeypatch):
        # Explicit workers=0 means "all CPUs", but a 0 in the
        # environment is far more likely a broken export than a request
        # for full parallelism — reject it loudly, naming the variable.
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with pytest.raises(ConfigError, match=WORKERS_ENV_VAR):
            resolve_workers(None)

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "-3")
        with pytest.raises(ConfigError, match=WORKERS_ENV_VAR):
            resolve_workers(None)

    def test_config_error_is_a_value_error(self, monkeypatch):
        # Callers that predate ConfigError catch ValueError; keep both
        # spellings working.
        monkeypatch.setenv(WORKERS_ENV_VAR, "zero")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestResolveEngine:
    """Precedence of --engine over --batch-size and $REPRO_BATCH."""

    def test_auto_and_none_pass_through(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV_VAR, raising=False)
        assert resolve_engine(None, None) is None
        assert resolve_engine("auto", None) is None
        assert resolve_engine("auto", 7) == 7
        assert resolve_engine(None, 0) == 0

    def test_scalar_forces_batching_off(self):
        assert resolve_engine("scalar", None) == 0
        assert resolve_engine("scalar", 0) == 0

    def test_scalar_contradicts_positive_batch(self):
        with pytest.raises(ConfigError, match="scalar"):
            resolve_engine("scalar", 5)

    def test_batched_explicit_batch_wins(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "3")
        assert resolve_engine("batched", 9) == 9

    def test_batched_contradicts_zero_batch(self):
        with pytest.raises(ConfigError, match="batched"):
            resolve_engine("batched", 0)

    def test_batched_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV_VAR, "11")
        assert resolve_engine("batched", None) == 11

    def test_batched_overrides_env_off(self, monkeypatch):
        # The flag outranks the environment: --engine batched under
        # REPRO_BATCH=0 still batches, at the default size.
        monkeypatch.setenv(BATCH_ENV_VAR, "0")
        assert resolve_engine("batched", None) == DEFAULT_BATCH_SIZE
        monkeypatch.setenv(BATCH_ENV_VAR, "off")
        assert resolve_engine("batched", None) == DEFAULT_BATCH_SIZE

    def test_batched_default_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV_VAR, raising=False)
        assert resolve_engine("batched", None) == DEFAULT_BATCH_SIZE

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            resolve_engine("vectorized", None)


class TestRunSharded:
    def test_serial_preserves_order(self):
        assert run_sharded(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        values = list(range(16))
        assert (run_sharded(_square, values, workers=4)
                == [v * v for v in values])

    def test_parallel_equals_serial(self):
        values = [5, 8, 13]
        assert (run_sharded(_square, values, workers=3)
                == run_sharded(_square, values, workers=1))

    def test_single_spec_runs_inline(self):
        assert run_sharded(_square, [6], workers=8) == [36]


def _ablation_dict(study, workers):
    return ablation_result_to_dict(study.run(workers=workers))


class TestShardedAblation:
    def test_shard_specs_cover_population(self):
        study = AblationStudy(mode="off", machines=50, epochs=10,
                              warmup_epochs=2, seed=7, shard_size=16)
        specs = study.shard_specs()
        assert sum(spec.machines for spec in specs) == 50
        assert specs[0].seed == 7  # shard 0 keeps the master seed
        assert len({spec.seed for spec in specs}) == len(specs)

    def test_sharded_serial_merges_all_shards(self):
        study = AblationStudy(mode="off", machines=24, epochs=8,
                              warmup_epochs=2, seed=7, shard_size=8)
        merged = study.run()
        parts = [run_ablation_shard(spec) for spec in study.shard_specs()]
        total_epochs = sum(part.control.epochs for part in parts)
        assert merged.control.epochs == total_epochs
        assert len(merged.control.socket_bandwidth) == sum(
            len(part.control.socket_bandwidth) for part in parts)

    def test_parallel_equals_serial_bit_for_bit(self):
        """The tentpole guarantee: worker count cannot change results."""
        make = lambda: AblationStudy(mode="off", machines=24, epochs=8,
                                     warmup_epochs=2, seed=7, shard_size=6)
        serial = _ablation_dict(make(), workers=1)
        parallel = _ablation_dict(make(), workers=4)
        assert serial == parallel

    def test_single_shard_matches_unsharded_engine(self):
        """Populations at or under the shard size reproduce the
        pre-sharding engine exactly (shard 0 keeps the master seed)."""
        study = AblationStudy(mode="off", machines=8, epochs=10,
                              warmup_epochs=3, seed=9)
        sharded = study.run()
        unsharded = AblationStudy(mode="off", machines=8, epochs=10,
                                  warmup_epochs=3, seed=9)._run_single()
        assert (ablation_result_to_dict(sharded)
                == ablation_result_to_dict(unsharded))

    def test_custom_fleet_factory_still_supported(self):
        study = AblationStudy(
            mode="off", machines=6, epochs=8, warmup_epochs=2, seed=3,
            fleet_factory=lambda seed: Fleet(machines=6, seed=seed))
        result = study.run()
        assert result.control.epochs == 8

    def test_shard_size_validation(self):
        with pytest.raises(ConfigError):
            AblationStudy(shard_size=0)


class TestShardedRollout:
    def test_parallel_equals_serial(self):
        make = lambda: RolloutStudy(machines=18, epochs=8, warmup_epochs=2,
                                    seed=5, shard_size=6)
        serial = make().run(workers=1)
        parallel = make().run(workers=4)
        assert (fleet_metrics_to_dict(serial.full, include_samples=True)
                == fleet_metrics_to_dict(parallel.full,
                                         include_samples=True))
        assert (profile_data_to_dict(serial.full_profile)
                == profile_data_to_dict(parallel.full_profile))

    def test_sharded_study_still_reproduces_paper_shape(self):
        result = RolloutStudy(machines=18, epochs=20, warmup_epochs=8,
                              seed=5, shard_size=6).run()
        shares = result.tax_cycle_shares()
        assert (shares["hard"]["all targeted DC tax"]
                > shares["none"]["all targeted DC tax"])

    def test_shard_size_validation(self):
        with pytest.raises(ConfigError):
            RolloutStudy(shard_size=-1)
