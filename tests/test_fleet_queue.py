"""Tests for the checkpointed shard work-queue.

The tentpole invariant under test: a study interrupted at *any* point
and resumed against the same checkpoint directory produces results
bit-identical to a fresh uninterrupted serial run, at any worker count.
Interruption is deterministic (``REPRO_QUEUE_ABORT_AFTER``), so the
kill-and-resume tests are golden tests, not races.
"""

import json

import pytest
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, QueueInterrupted
from repro.fleet import (
    AblationStudy,
    MicroFleetSweep,
    QueueStats,
    RolloutStudy,
    ShardCheckpoint,
    queue_status,
    run_checkpointed,
    shard_task_material,
    sweep_digest,
)
from repro.fleet.queue import (
    ABORT_ENV_VAR,
    CHECKPOINT_ENV_VAR,
    resolve_abort_after,
    resolve_checkpoint_dir,
)
from repro.serialization import (
    ablation_result_to_dict,
    rollout_result_to_dict,
)


def double(value):
    """Toy shard worker for the queue-mechanics tests."""
    return {"value": value * 2}


def materials_for(values):
    return [shard_task_material("toy", {"value": v, "shard_index": i})
            for i, v in enumerate(values)]


class TestResolvers:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_ENV_VAR, raising=False)
        assert resolve_checkpoint_dir(None) is None

    def test_env_var_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_ENV_VAR, str(tmp_path))
        assert resolve_checkpoint_dir(None) == str(tmp_path)

    def test_explicit_arg_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_ENV_VAR, "/somewhere/else")
        assert resolve_checkpoint_dir(tmp_path) == str(tmp_path)

    def test_empty_string_disables_despite_env(self, monkeypatch, tmp_path):
        """The CLI comparison legs pass '' to force a real recompute."""
        monkeypatch.setenv(CHECKPOINT_ENV_VAR, str(tmp_path))
        assert resolve_checkpoint_dir("") is None

    def test_abort_unset_means_never(self, monkeypatch):
        monkeypatch.delenv(ABORT_ENV_VAR, raising=False)
        assert resolve_abort_after(None) is None

    def test_abort_env_parsed(self, monkeypatch):
        monkeypatch.setenv(ABORT_ENV_VAR, "3")
        assert resolve_abort_after(None) == 3

    @pytest.mark.parametrize("junk", ["zero", "1.5", "0", "-2"])
    def test_abort_junk_rejected(self, monkeypatch, junk):
        monkeypatch.setenv(ABORT_ENV_VAR, junk)
        with pytest.raises(ConfigError):
            resolve_abort_after(None)

    def test_abort_explicit_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            resolve_abort_after(0)


class TestRunCheckpointed:
    def _run(self, values, checkpoint, **kwargs):
        return run_checkpointed(
            double, values, materials_for(values),
            checkpoint=checkpoint, to_payload=lambda r: r,
            from_payload=lambda p: p, **kwargs)

    def test_spec_and_material_counts_must_match(self, tmp_path):
        with pytest.raises(ConfigError):
            run_checkpointed(double, [1, 2], materials_for([1]),
                             checkpoint=ShardCheckpoint(tmp_path),
                             to_payload=lambda r: r,
                             from_payload=lambda p: p)

    def test_no_checkpoint_computes_everything(self):
        outputs, stats = run_checkpointed(double, [1, 2, 3],
                                          materials_for([1, 2, 3]))
        assert outputs == [{"value": 2}, {"value": 4}, {"value": 6}]
        assert stats == QueueStats(total=3, restored=0, computed=3,
                                   journaled=0)

    def test_second_run_restores_everything(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path)
        first, _ = self._run([1, 2, 3], checkpoint)
        second, stats = self._run([1, 2, 3], checkpoint)
        assert second == first
        assert stats.restored == 3 and stats.computed == 0
        assert stats.restored_indexes == (0, 1, 2)

    def test_resume_false_recomputes_but_journals(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path)
        self._run([1, 2], checkpoint)
        _, stats = self._run([1, 2], checkpoint, resume=False)
        assert stats.restored == 0 and stats.journaled == 2

    def test_abort_after_keeps_journaled_progress(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path)
        with pytest.raises(QueueInterrupted):
            self._run([1, 2, 3], checkpoint, abort_after=2)
        outputs, stats = self._run([1, 2, 3], checkpoint)
        assert stats.restored == 2 and stats.computed == 1
        assert outputs == [{"value": 2}, {"value": 4}, {"value": 6}]

    def test_restored_shards_do_not_count_toward_abort(self, tmp_path):
        """A resumed run under the same abort knob makes fresh progress
        instead of dying at the same shard forever."""
        checkpoint = ShardCheckpoint(tmp_path)
        with pytest.raises(QueueInterrupted):
            self._run([1, 2, 3], checkpoint, abort_after=1)
        with pytest.raises(QueueInterrupted):
            self._run([1, 2, 3], checkpoint, abort_after=1)
        _, stats = self._run([1, 2, 3], checkpoint)
        assert stats.restored == 2 and stats.computed == 1

    def test_abort_without_checkpoint_raises_up_front(self):
        """No journal means no progress to keep: fail before wasting
        compute on shards the interruption will throw away."""
        with pytest.raises(QueueInterrupted):
            run_checkpointed(double, [1, 2, 3], materials_for([1, 2, 3]),
                             abort_after=2)

    def test_abort_env_var_honoured(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ABORT_ENV_VAR, "1")
        with pytest.raises(QueueInterrupted):
            self._run([1, 2], ShardCheckpoint(tmp_path))

    def test_corrupt_journal_entry_recomputed(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path)
        self._run([1, 2], checkpoint)
        for path in tmp_path.glob("*.json"):
            if path.name != "_stats":
                path.write_text(path.read_text()[:20])
        outputs, stats = self._run([1, 2], checkpoint)
        assert outputs == [{"value": 2}, {"value": 4}]
        assert stats.restored == 0 and stats.computed == 2

    def test_undeserializable_payload_treated_as_miss(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path)
        self._run([1], checkpoint)

        def strict_from_payload(payload):
            raise ValueError("payload layout drift")

        outputs, stats = run_checkpointed(
            double, [1], materials_for([1]), checkpoint=checkpoint,
            to_payload=lambda r: r, from_payload=strict_from_payload)
        assert outputs == [{"value": 2}]
        assert stats.restored == 0 and stats.computed == 1

    def test_journal_failure_propagates(self, tmp_path):
        """Silently not checkpointing would break the resume promise."""
        checkpoint = ShardCheckpoint(tmp_path)

        def broken_journal(material, payload):
            raise OSError("disk full")

        checkpoint.journal = broken_journal
        with pytest.raises(OSError):
            self._run([1], checkpoint)


class TestSweepKillAndResume:
    """Golden kill-and-resume tests: digest equality with a fresh run."""

    KW = dict(mode="off", machines=9, seed=17, shard_size=3)

    @pytest.mark.parametrize("abort_after", [1, 2])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_resumed_digest_matches_fresh_run(self, tmp_path, monkeypatch,
                                              abort_after, workers):
        fresh = sweep_digest(MicroFleetSweep(**self.KW).run())
        monkeypatch.setenv(ABORT_ENV_VAR, str(abort_after))
        with pytest.raises(QueueInterrupted):
            MicroFleetSweep(**self.KW).run(
                workers=workers, checkpoint_dir=str(tmp_path))
        monkeypatch.delenv(ABORT_ENV_VAR)
        sweep = MicroFleetSweep(**self.KW)
        resumed = sweep.run(workers=workers, checkpoint_dir=str(tmp_path))
        assert sweep_digest(resumed) == fresh
        assert sweep.queue_stats.restored == abort_after
        assert sweep.queue_stats.computed == 3 - abort_after

    def test_double_interruption_then_resume(self, tmp_path, monkeypatch):
        """Progress accumulates across several kills."""
        fresh = sweep_digest(MicroFleetSweep(**self.KW).run())
        monkeypatch.setenv(ABORT_ENV_VAR, "1")
        for _ in range(2):
            with pytest.raises(QueueInterrupted):
                MicroFleetSweep(**self.KW).run(
                    checkpoint_dir=str(tmp_path))
        monkeypatch.delenv(ABORT_ENV_VAR)
        sweep = MicroFleetSweep(**self.KW)
        resumed = sweep.run(checkpoint_dir=str(tmp_path))
        assert sweep_digest(resumed) == fresh
        assert sweep.queue_stats.restored == 2

    def test_checkpointed_run_identical_to_plain_run(self, tmp_path):
        plain = sweep_digest(MicroFleetSweep(**self.KW).run())
        checkpointed = sweep_digest(MicroFleetSweep(**self.KW).run(
            checkpoint_dir=str(tmp_path)))
        assert checkpointed == plain

    def test_batch_size_excluded_from_task_key(self):
        """Lockstep batching cannot change shard results, so a journal
        written under one batch size must resolve under another."""
        a = MicroFleetSweep(batch_size=0, **self.KW).shard_task_materials()
        b = MicroFleetSweep(batch_size=8, **self.KW).shard_task_materials()
        assert a == b


class TestAblationKillAndResume:
    KW = dict(mode="off", machines=8, epochs=10, warmup_epochs=3, seed=3,
              shard_size=4)

    def test_resumed_result_matches_fresh_run(self, tmp_path, monkeypatch):
        fresh = ablation_result_to_dict(AblationStudy(**self.KW).run())
        monkeypatch.setenv(ABORT_ENV_VAR, "1")
        with pytest.raises(QueueInterrupted):
            AblationStudy(**self.KW).run(checkpoint_dir=str(tmp_path))
        monkeypatch.delenv(ABORT_ENV_VAR)
        study = AblationStudy(**self.KW)
        resumed = study.run(workers=2, checkpoint_dir=str(tmp_path))
        assert ablation_result_to_dict(resumed) == fresh
        assert study.queue_stats.restored == 1

    def test_different_mode_does_not_hit_other_modes_journal(self, tmp_path):
        AblationStudy(**self.KW).run(checkpoint_dir=str(tmp_path))
        other = AblationStudy(**{**self.KW, "mode": "hard"})
        other.run(checkpoint_dir=str(tmp_path))
        assert other.queue_stats.restored == 0


class TestRolloutKillAndResume:
    KW = dict(machines=8, epochs=10, warmup_epochs=3, seed=5)

    def test_resumed_result_matches_fresh_run(self, tmp_path, monkeypatch):
        fresh = rollout_result_to_dict(RolloutStudy(**self.KW).run())
        monkeypatch.setenv(ABORT_ENV_VAR, "1")
        with pytest.raises(QueueInterrupted):
            RolloutStudy(**self.KW).run(checkpoint_dir=str(tmp_path))
        monkeypatch.delenv(ABORT_ENV_VAR)
        study = RolloutStudy(**self.KW)
        resumed = study.run(checkpoint_dir=str(tmp_path))
        assert rollout_result_to_dict(resumed) == fresh
        assert study.queue_stats.restored == 1


class TestQueueStatus:
    def test_groups_by_study(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ABORT_ENV_VAR, raising=False)
        MicroFleetSweep(mode="off", machines=9, seed=17, shard_size=3).run(
            checkpoint_dir=str(tmp_path))
        AblationStudy(mode="off", machines=8, epochs=10, warmup_epochs=3,
                      seed=3, shard_size=4).run(
                          checkpoint_dir=str(tmp_path))
        status = queue_status(ShardCheckpoint(tmp_path))
        assert status["corrupt"] == 0
        assert status["shard_tasks"] == 5
        assert status["studies"]["micro-sweep"]["shards"] == 3
        assert status["studies"]["micro-sweep"]["shard_indexes"] == [0, 1, 2]
        assert status["studies"]["ablation"]["shards"] == 2

    def test_counts_corrupt_entries(self, tmp_path):
        checkpoint = ShardCheckpoint(tmp_path)
        checkpoint.journal(shard_task_material("toy", {"shard_index": 0}),
                           {"value": 1})
        entry = next(p for p in tmp_path.glob("*.json")
                     if p.name != "_stats")
        entry.write_text("garbage")
        status = queue_status(checkpoint)
        assert status["corrupt"] == 1
        assert status["shard_tasks"] == 0


# A throwaway cache purely for key computation; key_for never touches
# the filesystem.
_PROBE = ShardCheckpoint("key-probe-never-written")

_field_names = st.text(
    st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8)
_field_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(max_size=12),
    st.booleans(),
)
_spec_materials = st.dictionaries(_field_names, _field_values,
                                  min_size=1, max_size=6)


class TestShardTaskKeyProperties:
    """The content-addressing contract: equal key material means equal
    key; any perturbation of the material means a different key."""

    @settings(max_examples=scaled(100), deadline=None)
    @given(_spec_materials)
    def test_equal_material_equal_key(self, spec):
        a = shard_task_material("ablation", dict(spec))
        reordered = {name: spec[name] for name in reversed(list(spec))}
        b = shard_task_material("ablation", reordered)
        assert _PROBE.key_for(a) == _PROBE.key_for(b)

    @settings(max_examples=scaled(100), deadline=None)
    @given(_spec_materials, st.data())
    def test_any_field_perturbation_changes_key(self, spec, data):
        base_key = _PROBE.key_for(shard_task_material("ablation", spec))
        field = data.draw(st.sampled_from(sorted(spec)))
        perturbed = dict(spec)
        # Wrapping in a list differs from every primitive the strategy
        # can generate, including the original value itself.
        perturbed[field] = [perturbed[field]]
        perturbed_key = _PROBE.key_for(
            shard_task_material("ablation", perturbed))
        assert perturbed_key != base_key

    @settings(max_examples=scaled(100), deadline=None)
    @given(_spec_materials, _field_names)
    def test_added_field_changes_key(self, spec, extra):
        base_key = _PROBE.key_for(shard_task_material("ablation", spec))
        grown = dict(spec)
        grown[extra + "x"] = "added"
        assert _PROBE.key_for(
            shard_task_material("ablation", grown)) != base_key

    @settings(max_examples=scaled(50), deadline=None)
    @given(_spec_materials)
    def test_study_kind_is_part_of_the_key(self, spec):
        assert (_PROBE.key_for(shard_task_material("ablation", spec))
                != _PROBE.key_for(shard_task_material("micro-sweep", spec)))

    def test_real_study_materials_are_all_distinct(self):
        """Every shard of every study variant gets its own key."""
        kw = dict(machines=8, epochs=10, warmup_epochs=3, seed=3,
                  shard_size=4)
        materials = (
            AblationStudy(mode="off", **kw).shard_task_materials()
            + AblationStudy(mode="hard", **kw).shard_task_materials()
            + AblationStudy(mode="off", **kw).shard_task_materials(
                traced=True)
            + AblationStudy(mode="off", seed=4, **{k: v for k, v
                            in kw.items() if k != "seed"}
                            ).shard_task_materials()
            + MicroFleetSweep(mode="off", machines=9, seed=17,
                              shard_size=3).shard_task_materials()
            + RolloutStudy(machines=8, epochs=10, warmup_epochs=3,
                           seed=5).shard_task_materials()
        )
        keys = [_PROBE.key_for(m) for m in materials]
        assert len(set(keys)) == len(keys)
        assert len(set(json.dumps(m, sort_keys=True)
                       for m in materials)) == len(materials)
