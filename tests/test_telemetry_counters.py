"""Tests for repro.telemetry.counters."""

import pytest

from repro.telemetry import CounterSet


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("hits")
        counters.add("hits", 2)
        assert counters.get("hits") == 3
        assert counters["hits"] == 3

    def test_missing_is_zero(self):
        assert CounterSet().get("nope") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_contains(self):
        counters = CounterSet()
        counters.add("x")
        assert "x" in counters
        assert "y" not in counters

    def test_snapshot_is_independent(self):
        counters = CounterSet()
        counters.add("x", 5)
        snap = counters.snapshot()
        counters.add("x", 5)
        assert snap["x"] == 5
        assert counters["x"] == 10

    def test_delta(self):
        counters = CounterSet()
        counters.add("x", 5)
        snap = counters.snapshot()
        counters.add("x", 3)
        counters.add("y", 1)
        delta = counters.delta(snap)
        assert delta == {"x": 3, "y": 1}

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_iter_sorted(self):
        counters = CounterSet()
        counters.add("b")
        counters.add("a")
        assert [name for name, _ in counters] == ["a", "b"]
