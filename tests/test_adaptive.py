"""Tests for adaptive early stopping over ablation arms.

Stopping decisions must be pure functions of the shard results — the
determinism tests run the same study twice (and through a checkpoint
journal) and demand identical verdicts. The statistics themselves are
pinned with an injectable per-shard metric, which turns "does the CI
math stop the right arm at the right round" into exact assertions.
"""

import math

import pytest

from repro.errors import ConfigError
from repro.fleet import (
    AblationStudy,
    AdaptiveAblation,
    arm_interval,
    arms_separated,
    plan_rounds,
)
from repro.serialization import ablation_result_to_dict

# Small but genuinely multi-shard: 6 shards of 4 machines per arm.
KW = dict(machines=24, epochs=10, warmup_epochs=3, seed=3, shard_size=4)


def mode_keyed_metric(result):
    """Constant per arm with zero variance: 'off' and 'control' separate
    at the earliest legal round for any positive margin; 'hard' overlaps
    'off' within any margin >= 0.01."""
    return {"off": 0.10, "hard": 0.105, "hard+soft": 0.30,
            "soft-only": 0.40, "control": 0.00}[result.mode]


class TestIntervalMath:
    def test_empty_sample_is_uninformative(self):
        mean, halfwidth = arm_interval([])
        assert mean == 0.0 and math.isinf(halfwidth)

    def test_single_sample_has_infinite_halfwidth(self):
        mean, halfwidth = arm_interval([0.25])
        assert mean == 0.25 and math.isinf(halfwidth)

    def test_known_values(self):
        # Sample variance of (1, 2, 3) is 1; halfwidth = z * sqrt(1/3).
        mean, halfwidth = arm_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert halfwidth == pytest.approx(
            1.959963984540054 * math.sqrt(1.0 / 3.0))

    def test_zero_variance_gives_zero_halfwidth(self):
        assert arm_interval([0.5, 0.5, 0.5]) == (0.5, 0.0)

    def test_infinite_halfwidth_never_separates(self):
        assert not arms_separated((0.0, math.inf), (100.0, 0.0), 0.0)

    def test_separation_needs_margin_plus_halfwidths(self):
        assert arms_separated((0.0, 0.01), (0.1, 0.01), 0.05)
        assert not arms_separated((0.0, 0.03), (0.1, 0.03), 0.05)

    def test_separation_is_symmetric(self):
        a, b = (0.0, 0.01), (0.2, 0.02)
        assert arms_separated(a, b, 0.05) == arms_separated(b, a, 0.05)


class TestPlanRounds:
    def test_exact_division(self):
        assert plan_rounds(6, 2) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder_goes_to_last_round(self):
        assert plan_rounds(5, 2) == [(0, 2), (2, 4), (4, 5)]

    def test_quantum_larger_than_count(self):
        assert plan_rounds(3, 8) == [(0, 3)]

    def test_covers_everything_exactly_once(self):
        for count in range(1, 12):
            for quantum in range(1, 6):
                rounds = plan_rounds(count, quantum)
                covered = [i for start, stop in rounds
                           for i in range(start, stop)]
                assert covered == list(range(count))


class TestValidation:
    def test_needs_two_arms(self):
        with pytest.raises(ConfigError):
            AdaptiveAblation(modes=("off",), **KW)

    def test_rejects_duplicate_arms(self):
        with pytest.raises(ConfigError):
            AdaptiveAblation(modes=("off", "off"), **KW)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            AdaptiveAblation(modes=("off", "warp-speed"), **KW)

    def test_rejects_negative_margin(self):
        with pytest.raises(ConfigError):
            AdaptiveAblation(modes=("off", "control"), margin=-0.1, **KW)

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ConfigError):
            AdaptiveAblation(modes=("off", "control"), quantum=0, **KW)

    def test_rejects_min_rounds_below_two(self):
        with pytest.raises(ConfigError):
            AdaptiveAblation(modes=("off", "control"), min_rounds=1, **KW)


class TestEarlyStopping:
    def test_separable_arms_stop_at_earliest_legal_round(self):
        study = AdaptiveAblation(modes=("off", "control"), margin=0.05,
                                 metric=mode_keyed_metric, **KW)
        outcome = study.run()
        # Zero-variance metrics separate the moment intervals become
        # finite, which is exactly min_rounds (round index 1).
        for mode in ("off", "control"):
            assert outcome.arms[mode].stopped_round == 1
            assert outcome.arms[mode].shards_run == 2
            assert outcome.arms[mode].shards_total == 6
        assert outcome.rounds_run == 2

    def test_overlapping_arm_runs_full_budget(self):
        study = AdaptiveAblation(modes=("off", "hard"), margin=0.05,
                                 metric=mode_keyed_metric, **KW)
        outcome = study.run()
        # 0.10 vs 0.105 never clears a 0.05 margin: no early stop.
        for mode in ("off", "hard"):
            assert outcome.arms[mode].stopped_round is None
            assert outcome.arms[mode].shards_run == 6
        assert outcome.savings() == 1.0

    def test_three_arms_stop_independently(self):
        study = AdaptiveAblation(modes=("off", "hard", "control"),
                                 margin=0.05, metric=mode_keyed_metric,
                                 **KW)
        outcome = study.run()
        # 'control' is far from both others: stops at the first legal
        # round. 'off' and 'hard' overlap each other: full budget.
        assert outcome.arms["control"].stopped_round == 1
        assert outcome.arms["off"].stopped_round is None
        assert outcome.arms["hard"].stopped_round is None

    def test_machine_run_accounting_and_savings(self):
        study = AdaptiveAblation(modes=("off", "control"), margin=0.05,
                                 metric=mode_keyed_metric, **KW)
        outcome = study.run()
        assert outcome.machine_runs() == 2 * 2 * 4  # 2 arms x 2 shards x 4
        assert outcome.exhaustive_machine_runs() == 2 * 24
        assert outcome.savings() == pytest.approx(3.0)

    def test_ranking_orders_by_mean(self):
        study = AdaptiveAblation(modes=("control", "off", "soft-only"),
                                 margin=0.05, metric=mode_keyed_metric,
                                 **KW)
        outcome = study.run()
        assert outcome.ranking() == ["soft-only", "off", "control"]


class TestDeterminism:
    def test_two_fresh_runs_agree_exactly(self):
        first = AdaptiveAblation(modes=("off", "control"),
                                 margin=0.001, **KW).run()
        second = AdaptiveAblation(modes=("off", "control"),
                                  margin=0.001, **KW).run()
        assert first.to_dict() == second.to_dict()
        for mode in first.modes:
            assert (ablation_result_to_dict(first.results[mode])
                    == ablation_result_to_dict(second.results[mode]))

    def test_worker_count_cannot_change_verdicts(self):
        serial = AdaptiveAblation(modes=("off", "control"),
                                  margin=0.001, **KW).run(workers=1)
        parallel = AdaptiveAblation(modes=("off", "control"),
                                    margin=0.001, **KW).run(workers=2)
        assert serial.to_dict() == parallel.to_dict()

    def test_checkpointed_rerun_restores_and_agrees(self, tmp_path):
        fresh = AdaptiveAblation(modes=("off", "control"),
                                 margin=0.001, **KW).run()
        study = AdaptiveAblation(modes=("off", "control"),
                                 margin=0.001, **KW)
        study.run(checkpoint_dir=str(tmp_path))
        resumed_study = AdaptiveAblation(modes=("off", "control"),
                                         margin=0.001, **KW)
        resumed = resumed_study.run(checkpoint_dir=str(tmp_path))
        assert resumed.to_dict() == fresh.to_dict()
        assert resumed_study.queue_stats["restored"] > 0
        assert resumed_study.queue_stats["computed"] == 0


class TestExhaustiveEquivalence:
    def test_never_stopping_reproduces_exhaustive_arms(self):
        """With a margin no effect can clear, every arm runs its full
        budget and the merged per-arm results are bit-identical to the
        plain exhaustive studies."""
        outcome = AdaptiveAblation(modes=("off", "control"),
                                   margin=1e9, **KW).run()
        for mode in ("off", "control"):
            assert outcome.arms[mode].stopped_round is None
            assert outcome.arms[mode].shards_run == 6
            exhaustive = AblationStudy(mode=mode, **KW).run()
            assert (ablation_result_to_dict(outcome.results[mode])
                    == ablation_result_to_dict(exhaustive))
        assert outcome.savings() == 1.0

    def test_early_stop_preserves_exhaustive_ranking_with_savings(self):
        """The acceptance bar: adaptive reproduces the exhaustive
        verdict ordering with at least 2x fewer machine-runs."""
        exhaustive = {
            mode: AblationStudy(mode=mode, **KW).run().throughput_change()
            for mode in ("off", "control")}
        exhaustive_ranking = sorted(exhaustive,
                                    key=lambda m: -exhaustive[m])
        outcome = AdaptiveAblation(modes=("off", "control"),
                                   margin=0.001, **KW).run()
        assert outcome.ranking() == exhaustive_ranking
        assert outcome.savings() >= 2.0


class TestObservability:
    def test_round_and_stop_events_recorded(self, tmp_path):
        study = AdaptiveAblation(modes=("off", "control"), margin=0.001,
                                 **KW)
        study.run(obs_dir=str(tmp_path))
        lines = [line for line
                 in (tmp_path / "events.jsonl").read_text().splitlines()
                 if line]
        import json
        events = [json.loads(line)["kind"] for line in lines]
        assert events.count("adaptive-round") == 2
        assert events.count("arm-early-stop") == 2
        assert events[0] == "study-start"
        assert events[-1] == "study-finish"
