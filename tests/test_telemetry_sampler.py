"""Tests for repro.telemetry.sampler."""

import random

import pytest

from repro.errors import TelemetryError
from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource


class TestScriptedSource:
    def test_step_hold(self):
        source = ScriptedBandwidthSource(
            [(0.0, 10.0), (100.0, 50.0)], saturation_bandwidth=100.0)
        assert source.memory_bandwidth(0.0) == 10.0
        assert source.memory_bandwidth(99.0) == 10.0
        assert source.memory_bandwidth(100.0) == 50.0
        assert source.memory_bandwidth(1e9) == 50.0

    def test_before_first_breakpoint_holds_first(self):
        source = ScriptedBandwidthSource([(10.0, 5.0)], saturation_bandwidth=10.0)
        assert source.memory_bandwidth(0.0) == 5.0

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            ScriptedBandwidthSource([], saturation_bandwidth=10.0)

    def test_bad_saturation_rejected(self):
        with pytest.raises(ValueError):
            ScriptedBandwidthSource([(0.0, 1.0)], saturation_bandwidth=0.0)


class TestPerfSampler:
    def test_sample_utilization(self):
        source = ScriptedBandwidthSource([(0.0, 60.0)], saturation_bandwidth=100.0)
        sampler = PerfBandwidthSampler(source)
        sample = sampler.sample(5.0)
        assert sample.time_ns == 5.0
        assert sample.bandwidth == 60.0
        assert sample.utilization == pytest.approx(0.6)
        assert sampler.samples_taken == 1

    def test_dropouts_raise(self):
        source = ScriptedBandwidthSource([(0.0, 60.0)], saturation_bandwidth=100.0)
        sampler = PerfBandwidthSampler(source, dropout_rate=0.5,
                                       rng=random.Random(1))
        outcomes = []
        for t in range(200):
            try:
                sampler.sample(float(t))
                outcomes.append(True)
            except TelemetryError:
                outcomes.append(False)
        dropped = outcomes.count(False)
        assert 60 < dropped < 140  # roughly half
        assert sampler.samples_dropped == dropped

    def test_bad_dropout_rate(self):
        source = ScriptedBandwidthSource([(0.0, 1.0)], saturation_bandwidth=10.0)
        with pytest.raises(ValueError):
            PerfBandwidthSampler(source, dropout_rate=1.0)
