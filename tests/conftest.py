"""Suite-wide pytest setup.

Importing :mod:`tests.hypothesis_profiles` registers the hypothesis
example-budget profiles and loads the one named by
``HYPOTHESIS_PROFILE`` (default: ``default``) before any test module
is collected, so every ``@settings`` decorator resolves its budget
against the active profile.
"""

import tests.hypothesis_profiles  # noqa: F401
