"""Golden-equivalence tests: the batched lockstep engine vs scalar runs.

:func:`repro.memsys.run_many` batches eligible arms through the NumPy
lockstep engine (``repro.memsys.batched``) and must stay **bit-identical**
to running every arm through ``MemoryHierarchy.run`` — every
``RunResult`` float, every per-function stat, every cache and DRAM
counter, and the full post-run hierarchy state. These tests drive both
paths over heterogeneous arm fleets and compare everything, including
the dispatch decisions (which arms batched, which fell back to scalar).

The batched leg passes ``batch_size=None`` wherever the batch size is
not itself under test, so CI's ``batched-equivalence`` matrix can pin
it through ``REPRO_BATCH``.
"""

import pytest

from repro.access import AccessKind, MemoryAccess, Trace
from repro.memsys import (
    ConstantExternalLoad,
    MemoryHierarchy,
    PrefetcherBank,
    run_many,
)
from repro.memsys import batched
from repro.memsys.hierarchy import SLOW_ENGINE_ENV
from repro.memsys.prefetchers.bank import default_prefetcher_bank
from repro.memsys.prefetchers.base import HardwarePrefetcher
from repro.memsys.prefetchers.feedback import FeedbackThrottledPrefetcher
from repro.memsys.prefetchers.hinted import HintedRegionPrefetcher
from repro.memsys.prefetchers.nextline import NextLinePrefetcher
from repro.memsys.prefetchers.stream import StreamPrefetcher

pytestmark = pytest.mark.skipif(not batched.HAVE_NUMPY,
                                reason="lockstep engine needs numpy")

STAT_FIELDS = (
    "instructions", "compute_cycles", "stall_cycles", "loads", "stores",
    "software_prefetches", "l1_misses", "l2_misses", "llc_misses",
    "prefetch_covered", "late_prefetch_hits", "dram_wait_ns",
    "late_prefetch_wait_ns",
)

RESULT_FIELDS = (
    "elapsed_ns", "dram_demand_fills", "dram_prefetch_fills",
    "dram_demand_bytes", "dram_prefetch_bytes", "hw_prefetches_issued",
    "useful_prefetches", "wasted_prefetches",
)

CACHE_COUNTERS = ("hits", "misses", "prefetch_hits", "wasted_prefetches",
                  "occupancy")

ARM_LOADS = (None, 0.0, 0.25, 0.5, 1.0, 1.75, 0.125,
             0.25, None, 3.0, 0.5, 0.75, 1.5)


def stat_tuple(stats):
    return tuple(getattr(stats, field) for field in STAT_FIELDS)


def cache_contents(cache):
    """Every line in every set, LRU order — state equality, not just
    counters."""
    return {
        index: [(line, state.prefetched, state.referenced)
                for line, state in lines.items()]
        for index, lines in cache._sets.items()
    }


def bank_state(hierarchy):
    """Counters plus (when the protocol allows) the full training state."""
    bank = hierarchy.prefetchers
    counters = tuple(p.counter_signature() for p in bank)
    if bank.lockstep_safe():
        return (counters, bank.state_fingerprint())
    return (counters, None)


def snapshot(hierarchy, result):
    """Everything observable after a run, as one comparable structure."""
    return {
        "result": tuple(getattr(result, field) for field in RESULT_FIELDS),
        "total": stat_tuple(result.total),
        "functions": {name: stat_tuple(stats)
                      for name, stats in result.functions.items()},
        "function_order": list(result.functions),
        "caches": {
            level: (tuple(getattr(getattr(hierarchy, level), counter)
                          for counter in CACHE_COUNTERS),
                    cache_contents(getattr(hierarchy, level)))
            for level in ("l1", "l2", "llc")
        },
        "dram": (hierarchy.dram.demand_fills, hierarchy.dram.prefetch_fills,
                 hierarchy.dram.demand_bytes, hierarchy.dram.prefetch_bytes,
                 hierarchy.dram._window._sum),
        "now_ns": hierarchy.now_ns,
        "sw_issued": hierarchy.software_prefetches_issued,
        "in_flight": dict(hierarchy._in_flight),
        "recent": list(hierarchy._recent_miss_lines),
        "bank": bank_state(hierarchy),
    }


def build_arms(loads=ARM_LOADS):
    """A heterogeneous lockstep-eligible fleet: empty banks, varied
    external loads (None and ConstantExternalLoad must co-batch)."""
    return [
        MemoryHierarchy(
            prefetchers=PrefetcherBank([]),
            external_load=None if load is None
            else ConstantExternalLoad(load))
        for load in loads
    ]


def make_records():
    """A deterministic trace exercising every record kind and edge."""
    records = []
    for i in range(400):
        records.append(MemoryAccess(address=i * 8, size=8, pc=1,
                                    function="stream"))
    for i in range(120):
        records.append(MemoryAccess(
            address=1 << 20 | i * 256, size=256, kind=AccessKind.STORE,
            pc=2, function="writer", gap_cycles=3))
    for i in range(120):
        records.append(MemoryAccess(
            address=(2 << 20) + (i + 8) * 64, size=64,
            kind=AccessKind.SOFTWARE_PREFETCH, pc=3, function="reader"))
        records.append(MemoryAccess(
            address=(2 << 20) + i * 64, size=64, pc=4, function="reader"))
    records.append(MemoryAccess(
        address=3 << 20, size=64 * 64, kind=AccessKind.STREAM_HINT,
        pc=5, function="hinted"))
    for i in range(64):
        records.append(MemoryAccess(address=(3 << 20) + i * 64, size=64,
                                    pc=6, function="hinted"))
    base = 5 << 20
    for i in range(150):
        records.append(MemoryAccess(
            address=base + (i * 7919 % 4096) * 64, size=8, pc=7,
            function="chase", gap_cycles=i % 5))
    # Adjacent-line pairs in both directions (sequential-MLP edges).
    for offset in (0, 64, 128):
        records.append(MemoryAccess(address=base + offset, size=8, pc=7,
                                    function="chase"))
    return records


def assert_batched_matches_scalar(records, loads=ARM_LOADS,
                                  batch_size=None, split=None):
    """Both paths over the same arms must agree on everything.

    ``split`` optionally cuts the records into two back-to-back
    ``run_many`` calls to exercise warm-state continuation.
    """
    if split is None:
        traces = [Trace(records)]
    else:
        traces = [Trace(records[:split]), Trace(records[split:])]
    scalar_arms = build_arms(loads)
    batched_arms = build_arms(loads)
    for trace in traces:
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        batched_results = run_many(batched_arms, trace,
                                   batch_size=batch_size)
        for arm in range(len(scalar_arms)):
            assert (snapshot(batched_arms[arm], batched_results[arm])
                    == snapshot(scalar_arms[arm], scalar_results[arm])), (
                f"arm {arm} diverged")


def spy_lockstep(monkeypatch):
    """Record every run_lockstep call's arm count, without changing it."""
    calls = []
    original = batched.run_lockstep

    def spy(hierarchies, compiled, export_state=True):
        calls.append(len(hierarchies))
        return original(hierarchies, compiled, export_state=export_state)

    monkeypatch.setattr(batched, "run_lockstep", spy)
    return calls


class TestGoldenEquivalence:
    def test_mixed_arms_match_scalar(self):
        assert_batched_matches_scalar(make_records())

    def test_batch_size_one_equals_scalar(self):
        """The lockstep engine's degenerate case: one-arm batches."""
        assert_batched_matches_scalar(make_records(), batch_size=1)

    def test_uneven_final_batch(self):
        """13 arms at batch size 4: three full batches plus a remainder."""
        assert_batched_matches_scalar(make_records(), batch_size=4)

    def test_batch_larger_than_fleet(self):
        assert_batched_matches_scalar(make_records(), batch_size=512)

    def test_warm_state_continuation(self):
        """Back-to-back run_many calls on the same arms agree."""
        assert_batched_matches_scalar(make_records(), split=500)

    def test_empty_trace(self):
        assert_batched_matches_scalar([])

    def test_single_arm(self):
        assert_batched_matches_scalar(make_records(), loads=(0.5,))


class TestDispatch:
    def test_enabled_arm_batches_in_own_group(self, monkeypatch):
        """An arm with live (lockstep-safe) hardware prefetchers now
        batches — in its own one-arm group, since its bank signature
        differs from the empty-bank arms' — and results still come back
        bit-identical, in input order."""
        calls = spy_lockstep(monkeypatch)
        loads = (None, 0.5, 1.0, 0.25)

        def fleet():
            arms = build_arms(loads)
            hot = MemoryHierarchy(prefetchers=default_prefetcher_bank(),
                                  external_load=ConstantExternalLoad(0.5))
            arms.insert(2, hot)
            return arms

        trace = Trace(make_records())
        batched_arms = fleet()
        batched_results = run_many(batched_arms, trace)
        assert sorted(calls) == [1, len(loads)]  # own group, not scalar

        scalar_arms = fleet()
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        for arm in range(len(scalar_arms)):
            assert (snapshot(batched_arms[arm], batched_results[arm])
                    == snapshot(scalar_arms[arm], scalar_results[arm]))

    def test_unsafe_prefetcher_falls_back_to_scalar(self, monkeypatch):
        """A custom prefetcher without the lockstep protocol keeps its
        arm on the scalar engine (``lockstep_safe`` defaults to False),
        and the occupancy summary names the reason."""

        class OpaquePrefetcher(HardwarePrefetcher):
            def _observe(self, line, pc, was_hit):
                return [] if was_hit else [line + 64]

        calls = spy_lockstep(monkeypatch)
        loads = (None, 0.5, 1.0)

        def fleet():
            arms = build_arms(loads)
            arms.insert(1, MemoryHierarchy(
                prefetchers=PrefetcherBank([OpaquePrefetcher("opaque")])))
            return arms

        trace = Trace(make_records())
        occupancy = batched.BatchOccupancy()
        batched_arms = fleet()
        batched_results = run_many(batched_arms, trace, occupancy=occupancy)
        assert sum(calls) == len(loads)  # the opaque arm stayed scalar
        summary = occupancy.to_dict()
        assert summary["batched_arms"] == len(loads)
        assert summary["fallback_reasons"] == {"unsafe-prefetcher": 1}

        scalar_arms = fleet()
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        for arm in range(len(scalar_arms)):
            assert (snapshot(batched_arms[arm], batched_results[arm])
                    == snapshot(scalar_arms[arm], scalar_results[arm]))

    def test_msr_flip_regroups_one_arm(self, monkeypatch):
        """An MSR-style prefetcher flip between runs moves only that arm
        into its own lockstep sub-batch; its batch-mates keep batching
        together."""
        records = make_records()
        traces = [Trace(records[:500]), Trace(records[500:])]

        def fleet():
            arms = []
            for load in (None, 0.5, 1.0, 0.25, 1.5, 0.5):
                arm = MemoryHierarchy(
                    prefetchers=default_prefetcher_bank(),
                    external_load=None if load is None
                    else ConstantExternalLoad(load))
                arm.set_hardware_prefetchers(False)  # co-batched for now
                arms.append(arm)
            return arms, arms[2]

        calls = spy_lockstep(monkeypatch)
        batched_arms, flipper = fleet()
        batched_a = run_many(batched_arms, traces[0])
        assert sum(calls) == 6  # everyone batched while the bank was off
        calls.clear()
        flipper.set_hardware_prefetchers(True)
        batched_b = run_many(batched_arms, traces[1])
        assert sorted(calls) == [1, 5]  # flipped arm regrouped, alone

        scalar_arms, scalar_flipper = fleet()
        scalar_a = run_many(scalar_arms, traces[0], batch_size=0)
        scalar_flipper.set_hardware_prefetchers(True)
        scalar_b = run_many(scalar_arms, traces[1], batch_size=0)
        for arm in range(len(scalar_arms)):
            assert (snapshot(batched_arms[arm], batched_a[arm])
                    == snapshot(scalar_arms[arm], scalar_a[arm]))
            assert (snapshot(batched_arms[arm], batched_b[arm])
                    == snapshot(scalar_arms[arm], scalar_b[arm]))

    def test_tracer_arm_ineligible_null_tracer_is_not(self, monkeypatch):
        from repro.obs import NULL_TRACER, Tracer

        calls = spy_lockstep(monkeypatch)
        arms = build_arms((None, 0.5, 1.0))
        arms[0].obs = NULL_TRACER  # falsy: the no-observability state
        arms[1].obs = Tracer()
        trace = Trace(make_records()[:400])
        batched_results = run_many(arms, trace)
        assert sum(calls) == 2  # the recording tracer forced one arm scalar

        scalar_arms = build_arms((None, 0.5, 1.0))
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        for arm in range(3):
            assert (snapshot(arms[arm], batched_results[arm])
                    == snapshot(scalar_arms[arm], scalar_results[arm]))

    def test_batch_env_zero_disables_lockstep(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        calls = spy_lockstep(monkeypatch)
        run_many(build_arms((None, 0.5)), Trace(make_records()[:100]))
        assert calls == []

    def test_batch_env_sets_chunking(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "5")
        calls = spy_lockstep(monkeypatch)
        run_many(build_arms(), Trace(make_records()[:100]))
        assert sorted(calls) == [4, 4, 5]  # 13 arms, balanced batches of <=5

    def test_slow_engine_env_disables_lockstep(self, monkeypatch):
        monkeypatch.setenv(SLOW_ENGINE_ENV, "1")
        calls = spy_lockstep(monkeypatch)
        run_many(build_arms((None, 0.5)), Trace(make_records()[:100]))
        assert calls == []

    def test_prune_bound_forces_scalar(self, monkeypatch):
        """When the trace could trip the scalar engine's in-flight
        prune (a per-arm-clock comparison lockstep cannot replicate),
        the whole group falls back to scalar — and still agrees."""
        monkeypatch.setattr(MemoryHierarchy, "_IN_FLIGHT_PRUNE_THRESHOLD", 4)
        calls = spy_lockstep(monkeypatch)
        records = [MemoryAccess(
            address=(6 << 20) + i * 64, size=64,
            kind=AccessKind.SOFTWARE_PREFETCH, pc=1, function="spray")
            for i in range(64)]
        assert_batched_matches_scalar(records, loads=(None, 0.5, 1.0))
        assert calls == []


def build_enabled_arms(loads=(None, 0.5, 1.0, 0.25)):
    """A lockstep-eligible fleet with live default banks."""
    return [
        MemoryHierarchy(
            prefetchers=default_prefetcher_bank(),
            external_load=None if load is None
            else ConstantExternalLoad(load))
        for load in loads
    ]


def exotic_bank():
    """Hinted + feedback-wrapped engines: every lockstep hook in play."""
    return PrefetcherBank([
        HintedRegionPrefetcher(name="hinted_stream", degree=2,
                               lead_lines=8, max_regions=4),
        FeedbackThrottledPrefetcher(
            NextLinePrefetcher(name="l1_next_line", degree=2),
            window=32, gate_below=0.4, ungate_above=0.7,
            tracker_entries=256),
        StreamPrefetcher(distance=8, degree=2),
    ])


class TestEnabledGolden:
    """Bit-identity with hardware prefetchers live — the tentpole."""

    def assert_enabled_fleet_agrees(self, bank_factory, batch_size=None,
                                    split=None):
        records = make_records()
        if split is None:
            traces = [Trace(records)]
        else:
            traces = [Trace(records[:split]), Trace(records[split:])]

        def fleet():
            arms = build_enabled_arms()
            arms.append(MemoryHierarchy(prefetchers=bank_factory()))
            return arms

        scalar_arms, batched_arms = fleet(), fleet()
        for trace in traces:
            scalar_results = run_many(scalar_arms, trace, batch_size=0)
            batched_results = run_many(batched_arms, trace,
                                       batch_size=batch_size)
            for arm in range(len(scalar_arms)):
                assert (snapshot(batched_arms[arm], batched_results[arm])
                        == snapshot(scalar_arms[arm],
                                    scalar_results[arm])), (
                    f"arm {arm} diverged")

    def test_default_banks_match_scalar(self):
        self.assert_enabled_fleet_agrees(default_prefetcher_bank)

    def test_hinted_and_feedback_banks_match_scalar(self):
        self.assert_enabled_fleet_agrees(exotic_bank)

    def test_warm_enabled_continuation(self):
        """Trained banks regroup and keep batching across calls."""
        self.assert_enabled_fleet_agrees(default_prefetcher_bank, split=500)

    def test_enabled_small_batches(self):
        self.assert_enabled_fleet_agrees(exotic_bank, batch_size=2)

    def test_hw_prefetches_issued_reported(self):
        arms = build_enabled_arms((None, 0.5))
        results = run_many(arms, Trace(make_records()))
        assert results[0].hw_prefetches_issued > 0
        assert (results[0].hw_prefetches_issued
                == sum(p.issued for p in arms[0].prefetchers))


class TestEligibilityEdges:
    def test_epoch_regrouping_sub_batches(self, monkeypatch):
        """Control-mode shape: daemons re-enable some arms' banks
        between trace slices; the next call forms lockstep sub-batches
        keyed by the enabled mask instead of dropping anyone to scalar."""
        records = make_records()
        traces = [Trace(records[:400]), Trace(records[400:])]

        def fleet():
            arms = build_enabled_arms((None, 0.5, 1.0, 0.25))
            for arm in arms:
                arm.set_hardware_prefetchers(False)
            return arms

        calls = spy_lockstep(monkeypatch)
        batched_arms = fleet()
        run_many(batched_arms, traces[0])
        assert calls == [4]
        calls.clear()
        for arm in batched_arms[2:]:
            arm.set_hardware_prefetchers(True)  # the MSR daemon acted
        occupancy = batched.BatchOccupancy()
        batched_b = run_many(batched_arms, traces[1], occupancy=occupancy)
        assert sorted(calls) == [2, 2]  # two sub-batches, nothing scalar
        assert occupancy.to_dict() == {
            "batched_arms": 4, "scalar_arms": 0, "groups": 2,
            "fallback_reasons": {}}

        scalar_arms = fleet()
        run_many(scalar_arms, traces[0], batch_size=0)
        for arm in scalar_arms[2:]:
            arm.set_hardware_prefetchers(True)
        scalar_b = run_many(scalar_arms, traces[1], batch_size=0)
        for arm in range(4):
            assert (snapshot(batched_arms[arm], batched_b[arm])
                    == snapshot(scalar_arms[arm], scalar_b[arm]))

    def test_tracer_attached_mid_study(self, monkeypatch):
        """An arm that gains a recording tracer between calls falls back
        to scalar for subsequent calls only — and still agrees."""
        from repro.obs import Tracer

        records = make_records()
        traces = [Trace(records[:400]), Trace(records[400:])]
        calls = spy_lockstep(monkeypatch)
        arms = build_enabled_arms((None, 0.5, 1.0))
        run_many(arms, traces[0])
        assert calls == [3]
        calls.clear()
        arms[1].obs = Tracer()
        occupancy = batched.BatchOccupancy()
        batched_b = run_many(arms, traces[1], occupancy=occupancy)
        assert sum(calls) == 2
        assert occupancy.to_dict()["fallback_reasons"] == {"tracer": 1}

        scalar_arms = build_enabled_arms((None, 0.5, 1.0))
        run_many(scalar_arms, traces[0], batch_size=0)
        scalar_b = run_many(scalar_arms, traces[1], batch_size=0)
        for arm in range(3):
            assert (snapshot(arms[arm], batched_b[arm])
                    == snapshot(scalar_arms[arm], scalar_b[arm]))

    def test_callable_external_load_is_scalar(self, monkeypatch):
        """A non-constant external DRAM load (per-arm utilization feeds
        per-arm latency) keeps its arm on the scalar engine."""
        calls = spy_lockstep(monkeypatch)
        arms = build_enabled_arms((None, 0.5))
        arms.append(MemoryHierarchy(
            prefetchers=default_prefetcher_bank(),
            external_load=lambda now_ns: 0.25))
        occupancy = batched.BatchOccupancy()
        run_many(arms, Trace(make_records()[:300]), occupancy=occupancy)
        assert sum(calls) == 2
        assert occupancy.to_dict()["fallback_reasons"] == {
            "external-load": 1}

    def test_prune_bailout_reruns_scalar(self, monkeypatch):
        """Hardware-issue volume crossing the prune threshold mid-batch
        aborts lockstep (the prune keys on per-arm clocks); the chunk
        reruns scalar, with no state leaked from the aborted batch."""
        monkeypatch.setattr(MemoryHierarchy, "_IN_FLIGHT_PRUNE_THRESHOLD", 4)
        # Pure demand loads: no software prefetches, so the static prune
        # bound passes and only the dynamic bailout can catch this.
        trace = Trace(make_records()[:400])
        occupancy = batched.BatchOccupancy()
        arms = build_enabled_arms((None, 0.5, 1.0))
        results = run_many(arms, trace, occupancy=occupancy)
        summary = occupancy.to_dict()
        assert summary["fallback_reasons"] == {"prune-bailout": 3}
        assert summary["batched_arms"] == 0

        scalar_arms = build_enabled_arms((None, 0.5, 1.0))
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        for arm in range(3):
            assert (snapshot(arms[arm], results[arm])
                    == snapshot(scalar_arms[arm], scalar_results[arm]))

    def test_fingerprint_cache_stamped_and_invalidated(self):
        """Satellite 1: batch export stamps the shared fingerprint;
        MSR flips, scalar runs, and resets all invalidate it."""
        trace = Trace(make_records()[:300])
        arms = build_enabled_arms((None, 0.5))
        run_many(arms, trace)
        for arm in arms:
            assert arm._state_fp_cache is not None
            assert (batched.cached_state_fingerprint(arm)
                    == batched.state_fingerprint(arm))
        sig = batched.cached_config_signature(arms[0])
        assert arms[0]._config_sig_cache is sig
        arms[0].set_hardware_prefetchers(False)  # MSR-style flip
        assert arms[0]._state_fp_cache is None
        arms[1].run(trace)  # scalar run mutates state directly
        assert arms[1]._state_fp_cache is None
        arms[0].reset()
        assert arms[0]._state_fp_cache is None
        # Config is lifetime-immutable: the cache survives everything.
        assert arms[0]._config_sig_cache is sig


class TestExportState:
    def test_export_state_false_matches_results_flushes_caches(self):
        """The sweep path: identical results and counters, no cache
        rebuild."""
        trace = Trace(make_records())
        scalar_arms = build_arms()
        scalar_results = run_many(scalar_arms, trace, batch_size=0)
        arms = build_arms()
        results = run_many(arms, trace, export_state=False)
        for arm in range(len(arms)):
            got, want = results[arm], scalar_results[arm]
            assert (tuple(getattr(got, f) for f in RESULT_FIELDS)
                    == tuple(getattr(want, f) for f in RESULT_FIELDS))
            assert stat_tuple(got.total) == stat_tuple(want.total)
            assert ({n: stat_tuple(s) for n, s in got.functions.items()}
                    == {n: stat_tuple(s) for n, s in want.functions.items()})
            # Counters and clock survive; cache contents do not.
            assert arms[arm].now_ns == scalar_arms[arm].now_ns
            assert (arms[arm].dram.demand_fills
                    == scalar_arms[arm].dram.demand_fills)
            for level in ("l1", "l2", "llc"):
                cache = getattr(arms[arm], level)
                assert cache.occupancy == 0
                assert not cache._sets
                assert (cache.misses
                        == getattr(scalar_arms[arm], level).misses)

    def test_flushed_arms_can_still_run_again(self):
        """export_state=False leaves arms cold but usable.

        Only the cache-behaviour integers can match a truly cold arm:
        the clock and DRAM window survive the flush, so timing floats
        legitimately differ on the rerun.
        """
        count_stats = ("instructions", "loads", "stores",
                       "software_prefetches", "l1_misses", "l2_misses",
                       "llc_misses")
        trace = Trace(make_records()[:300])
        arms = build_arms((None, 0.5))
        run_many(arms, trace, export_state=False)
        rerun = run_many(arms, trace)  # cold caches again: same misses
        cold = build_arms((None, 0.5))
        cold_results = run_many(cold, trace, batch_size=0)
        for arm in range(2):
            assert (tuple(getattr(rerun[arm].total, f) for f in count_stats)
                    == tuple(getattr(cold_results[arm].total, f)
                             for f in count_stats))
