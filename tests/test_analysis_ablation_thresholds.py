"""Tests for micro ablation analysis and the threshold study."""

import pytest

from repro.analysis import (
    MicroAblationStudy,
    ThresholdStudy,
    aggregate_by_category,
)
from repro.analysis.ablation_analysis import FunctionAblation
from repro.errors import ConfigError
from repro.workloads import FunctionCategory, TAX_CATEGORIES


@pytest.fixture(scope="module")
def ablations():
    return MicroAblationStudy(seed=7, scale=0.6).run()


class TestMicroAblation:
    def test_covers_roster(self, ablations):
        assert len(ablations) >= 10

    def test_sorted_by_cycle_delta(self, ablations):
        deltas = [a.cycle_delta for a in ablations]
        assert deltas == sorted(deltas, reverse=True)

    def test_tax_functions_top_the_ranking(self, ablations):
        """Figure 11: the biggest regressions are tax functions."""
        top5 = ablations[:5]
        assert all(a.category in TAX_CATEGORIES for a in top5)

    def test_non_tax_improves(self, ablations):
        for ablation in ablations:
            if ablation.category is FunctionCategory.NON_TAX \
                    and ablation.function != "misc_streaming":
                assert ablation.cycle_delta < 0.05

    def test_misc_streaming_is_the_non_tax_regresser(self, ablations):
        """Section 4.1: some non-tax code regresses too, but is too cold
        per site to target with software prefetches."""
        by_name = {a.function: a for a in ablations}
        assert by_name["misc_streaming"].cycle_delta > 0.10

    def test_tax_mpki_delta_large(self, ablations):
        by_name = {a.function: a for a in ablations}
        assert by_name["memcpy"].mpki_delta > 2.0
        assert abs(by_name["pointer_chase"].mpki_delta) < 0.1

    def test_category_aggregation_matches_figure12(self, ablations):
        rollup = aggregate_by_category(ablations)
        for category in TAX_CATEGORIES:
            assert rollup[category] > 0.10, category
        assert rollup[FunctionCategory.NON_TAX] < 0.05

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            MicroAblationStudy(scale=0)


class TestFunctionAblationMath:
    def make(self, cycles_on=100, cycles_off=150, mpki_on=10, mpki_off=40):
        return FunctionAblation("f", FunctionCategory.HASHING,
                                cycles_on, cycles_off, mpki_on, mpki_off)

    def test_cycle_delta(self):
        assert self.make().cycle_delta == pytest.approx(0.5)

    def test_mpki_delta(self):
        assert self.make().mpki_delta == pytest.approx(3.0)

    def test_zero_baselines(self):
        assert self.make(cycles_on=0).cycle_delta == 0.0
        assert self.make(mpki_on=0, mpki_off=5).mpki_delta == float("inf")
        assert self.make(mpki_on=0, mpki_off=0).mpki_delta == 0.0


class TestThresholdStudy:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return ThresholdStudy(machines=14, epochs=60, warmup_epochs=20,
                              seed=9).run()

    def test_covers_paper_configurations(self, outcomes):
        assert [o.label for o in outcomes] == ["60/80", "50/70", "70/90"]

    def test_eager_configs_outperform_conservative(self, outcomes):
        """Figure 10's ordering: 70/90 (rarely triggers) trails the
        configurations that actually disable prefetchers at load."""
        by_label = {o.label: o for o in outcomes}
        assert (by_label["60/80"].throughput_change
                >= by_label["70/90"].throughput_change)

    def test_triggering_configs_cut_bandwidth(self, outcomes):
        by_label = {o.label: o for o in outcomes}
        assert by_label["60/80"].bandwidth_change_mean < 0
        assert by_label["50/70"].bandwidth_change_mean < 0

    def test_best_helper(self, outcomes):
        best = ThresholdStudy.best(outcomes)
        assert best.throughput_change == max(o.throughput_change
                                             for o in outcomes)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThresholdStudy(configurations=())
        with pytest.raises(ConfigError):
            ThresholdStudy.best([])
