"""Tests for irregular, app, SPEC, size-distribution, and mix generators."""

import random

import pytest

from repro.access import AddressSpace
from repro.errors import ConfigError
from repro.units import CACHE_LINE_BYTES
from repro.workloads import (
    FUNCTION_ROSTER,
    MemcpySizeDistribution,
    SPEC_SUITE,
    TAX_CATEGORIES,
    btree_lookup_trace,
    database_server,
    fleet_mix_trace,
    fleetbench_trace,
    generate_function_trace,
    hashmap_probe_trace,
    ml_model_server,
    pointer_chase_trace,
    search_backend,
    size_histogram,
    suite_trace,
)


@pytest.fixture
def space():
    return AddressSpace()


@pytest.fixture
def rng():
    return random.Random(12345)


class TestSizeDistribution:
    def test_samples_in_bounds(self, rng):
        dist = MemcpySizeDistribution(min_bytes=16, max_bytes=1 << 20)
        for _ in range(500):
            size = dist.sample(rng)
            assert 16 <= size <= 1 << 20

    def test_mostly_small_with_long_tail(self, rng):
        """Figure 14: most copies are small; a long tail of large ones."""
        dist = MemcpySizeDistribution()
        samples = dist.sample_many(rng, 5000)
        small = sum(1 for s in samples if s <= 1024)
        huge = sum(1 for s in samples if s >= 64 * 1024)
        assert small / len(samples) > 0.7
        assert huge > 0

    def test_scaled_increases_mean(self, rng):
        base = MemcpySizeDistribution()
        bigger = base.scaled(1.26)
        mean_base = base.mean_of(random.Random(1), 5000)
        mean_big = bigger.mean_of(random.Random(1), 5000)
        assert mean_big > mean_base * 1.1

    def test_deterministic_given_seed(self):
        dist = MemcpySizeDistribution()
        a = dist.sample_many(random.Random(9), 100)
        b = dist.sample_many(random.Random(9), 100)
        assert a == b

    def test_bad_params(self):
        with pytest.raises(ValueError):
            MemcpySizeDistribution(scale=0)
        with pytest.raises(ValueError):
            MemcpySizeDistribution(min_bytes=10, max_bytes=5)

    def test_histogram_sums_to_one(self, rng):
        samples = MemcpySizeDistribution().sample_many(rng, 1000)
        edges = [16, 64, 256, 1024, 4096, 1 << 16, 1 << 23]
        hist = size_histogram(samples, edges)
        assert sum(frac for _, frac in hist) == pytest.approx(1.0)

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            size_histogram([], [1, 2])
        with pytest.raises(ValueError):
            size_histogram([1], [2, 1])


class TestIrregular:
    def test_pointer_chase_addresses_within_working_set(self, space, rng):
        trace = pointer_chase_trace(space, 1 << 20, 200, rng=rng)
        base = min(r.address for r in trace)
        assert all(base <= r.address < base + (1 << 20) for r in trace)
        assert all(r.address % CACHE_LINE_BYTES == 0 for r in trace)

    def test_pointer_chase_is_irregular(self, space, rng):
        trace = pointer_chase_trace(space, 1 << 24, 500, rng=rng)
        deltas = {b.address - a.address for a, b in zip(trace, trace[1:])}
        assert len(deltas) > 100  # no dominant stride

    def test_btree_levels_have_distinct_pcs(self, space, rng):
        trace = btree_lookup_trace(space, keys=10, rng=rng, depth=4)
        assert len({r.pc for r in trace}) == 4

    def test_hashmap_two_loads_per_probe(self, space, rng):
        trace = hashmap_probe_trace(space, probes=50, rng=rng)
        assert len(trace) == 100

    def test_validation(self, space, rng):
        with pytest.raises(ValueError):
            pointer_chase_trace(space, 32, 10, rng=rng)
        with pytest.raises(ValueError):
            btree_lookup_trace(space, keys=0, rng=rng)
        with pytest.raises(ValueError):
            hashmap_probe_trace(space, probes=0, rng=rng)


class TestRoster:
    def test_all_functions_generate(self, rng):
        for name in FUNCTION_ROSTER:
            trace = generate_function_trace(name, rng, AddressSpace(),
                                            scale=0.2)
            assert len(trace) > 0
            assert all(r.function for r in trace)

    def test_attribution_matches_roster_name(self, rng):
        for name in ("memcpy", "compress", "hash", "pointer_chase"):
            trace = generate_function_trace(name, rng, AddressSpace(),
                                            scale=0.2)
            assert {r.function for r in trace} == {name}

    def test_tax_share_of_cycles_30_to_40_percent(self):
        tax = sum(p.cycle_share for p in FUNCTION_ROSTER.values()
                  if p.category in TAX_CATEGORIES)
        assert 0.30 <= tax <= 0.40

    def test_unknown_function_raises(self, rng):
        with pytest.raises(ConfigError):
            generate_function_trace("nope", rng, AddressSpace())

    def test_bad_scale(self, rng):
        with pytest.raises(ConfigError):
            generate_function_trace("memcpy", rng, AddressSpace(), scale=0)


class TestApps:
    @pytest.mark.parametrize("factory", [search_backend, ml_model_server,
                                         database_server])
    def test_request_traces_generate(self, factory, rng):
        app = factory()
        trace = app.request_trace(rng, AddressSpace(), scale=0.3)
        assert len(trace) > 0

    def test_weights_normalized(self):
        for factory in (search_backend, ml_model_server, database_server):
            weights = factory().weights
            assert sum(weights.values()) == pytest.approx(1.0)

    def test_ml_server_is_most_irregular(self):
        assert ml_model_server().tax_fraction() < search_backend().tax_fraction()
        assert search_backend().tax_fraction() < database_server().tax_fraction()

    def test_workload_trace_scales_with_requests(self, rng):
        app = search_backend()
        one = app.workload_trace(random.Random(1), AddressSpace(), 1, scale=0.2)
        two = app.workload_trace(random.Random(1), AddressSpace(), 2, scale=0.2)
        assert len(two) > len(one)

    def test_invalid_mix_rejected(self):
        from repro.workloads.apps import ApplicationModel
        with pytest.raises(ConfigError):
            ApplicationModel(name="x", mix=())
        with pytest.raises(ConfigError):
            ApplicationModel(name="x", mix=(("nope", 1.0),))
        with pytest.raises(ConfigError):
            ApplicationModel(name="x", mix=(("memcpy", 0.0),))


class TestSpec:
    def test_suite_members_generate(self, rng):
        for benchmark in SPEC_SUITE:
            trace = benchmark.trace(rng, AddressSpace(), scale=0.2)
            assert len(trace) > 0

    def test_suite_is_regular_dominated(self, rng):
        trace = suite_trace(rng, AddressSpace(), scale=0.2)
        irregular = sum(1 for r in trace if r.function == "spec_irregular")
        assert irregular / len(trace) < 0.3


class TestMixes:
    def test_fleetbench_contains_all_roster_functions(self, rng):
        trace = fleetbench_trace(rng, AddressSpace(), scale=0.5)
        assert set(trace.functions()) == set(FUNCTION_ROSTER)

    def test_custom_weights(self, rng):
        trace = fleet_mix_trace(rng, AddressSpace(),
                                weights={"memcpy": 1.0}, scale=0.5)
        assert set(trace.functions()) == {"memcpy"}

    def test_zero_weight_excluded(self, rng):
        trace = fleet_mix_trace(
            rng, AddressSpace(),
            weights={"memcpy": 1.0, "hash": 0.0}, scale=0.5)
        assert "hash" not in trace.functions()

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            fleet_mix_trace(rng, AddressSpace(), weights={"nope": 1.0})
        with pytest.raises(ConfigError):
            fleet_mix_trace(rng, AddressSpace(), scale=0)
