"""Hypothesis example-budget profiles for the test suite.

Every property test pins an explicit ``max_examples`` tuned to keep
the tier-1 wall clock bounded. Those pins are routed through
:func:`scaled` so one environment variable can multiply every budget
at once: the scheduled nightly CI job exports
``HYPOTHESIS_PROFILE=nightly`` and gets 10x the examples on the exact
same suite, while default runs keep the budgets (and the runtime) they
always had. An unknown profile name fails loudly rather than silently
running the default budget — a nightly job that typos the profile
should not pass while testing ten times less than it claims.
"""

import os

from hypothesis import settings

# scale multiplies every pinned max_examples; the remaining keys are
# hypothesis settings applied profile-wide.
PROFILES = {
    "default": {"scale": 1},
    "ci": {"scale": 1},
    # max_examples covers @given tests with no pinned budget; scale
    # multiplies the pinned ones.
    "nightly": {"scale": 10, "max_examples": 1000, "print_blob": True},
}

_ACTIVE = os.environ.get("HYPOTHESIS_PROFILE", "default")
if _ACTIVE not in PROFILES:
    raise RuntimeError(
        f"unknown HYPOTHESIS_PROFILE {_ACTIVE!r} "
        f"(known: {', '.join(sorted(PROFILES))})")

for _name, _spec in PROFILES.items():
    settings.register_profile(
        _name, deadline=None,
        **{key: value for key, value in _spec.items() if key != "scale"})

settings.load_profile(_ACTIVE)

_SCALE = PROFILES[_ACTIVE]["scale"]


def scaled(max_examples):
    """A pinned example budget multiplied by the active profile's scale."""
    return max_examples * _SCALE
