"""Golden-equivalence tests: the compiled engine vs the interpreter.

The compiled fast engine must produce **bit-identical** results to the
reference interpreter (``REPRO_SLOW_ENGINE=1``): every ``RunResult``
field including floats, every per-function stat, and every cache/DRAM
counter. These tests drive both engines over deterministic and
hypothesis-generated traces and compare everything.
"""

import os

import pytest
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings, strategies as st

from repro.access import AccessKind, MemoryAccess, Trace
from repro.memsys import MemoryHierarchy, PrefetcherBank
from repro.memsys.hierarchy import SLOW_ENGINE_ENV
from repro.memsys.prefetchers.bank import default_prefetcher_bank

STAT_FIELDS = (
    "instructions", "compute_cycles", "stall_cycles", "loads", "stores",
    "software_prefetches", "l1_misses", "l2_misses", "llc_misses",
    "prefetch_covered", "late_prefetch_hits", "dram_wait_ns",
    "late_prefetch_wait_ns",
)

RESULT_FIELDS = (
    "elapsed_ns", "dram_demand_fills", "dram_prefetch_fills",
    "dram_demand_bytes", "dram_prefetch_bytes", "hw_prefetches_issued",
    "useful_prefetches", "wasted_prefetches",
)

CACHE_COUNTERS = ("hits", "misses", "prefetch_hits", "wasted_prefetches",
                  "occupancy")


def stat_tuple(stats):
    return tuple(getattr(stats, field) for field in STAT_FIELDS)


def snapshot(hierarchy, result):
    """Everything observable after a run, as one comparable structure."""
    return {
        "result": tuple(getattr(result, field) for field in RESULT_FIELDS),
        "total": stat_tuple(result.total),
        "functions": {name: stat_tuple(stats)
                      for name, stats in result.functions.items()},
        "caches": {
            level: tuple(getattr(getattr(hierarchy, level), counter)
                         for counter in CACHE_COUNTERS)
            for level in ("l1", "l2", "llc")
        },
        "dram": (hierarchy.dram.demand_fills, hierarchy.dram.prefetch_fills,
                 hierarchy.dram.demand_bytes, hierarchy.dram.prefetch_bytes,
                 hierarchy.dram._window._sum),
        "now_ns": hierarchy.now_ns,
        "sw_issued": hierarchy.software_prefetches_issued,
        "in_flight": dict(hierarchy._in_flight),
        "recent": list(hierarchy._recent_miss_lines),
        "hw_issued": [p.issued for p in hierarchy.prefetchers],
    }


def run_one(traces, slow, bank_factory, prefetchers_enabled=True):
    """Run ``traces`` in sequence on one hierarchy with a chosen engine."""
    hierarchy = MemoryHierarchy(prefetchers=bank_factory())
    hierarchy.set_hardware_prefetchers(prefetchers_enabled)
    saved = os.environ.get(SLOW_ENGINE_ENV)
    try:
        if slow:
            os.environ[SLOW_ENGINE_ENV] = "1"
        else:
            os.environ.pop(SLOW_ENGINE_ENV, None)
        results = [hierarchy.run(trace) for trace in traces]
    finally:
        if saved is None:
            os.environ.pop(SLOW_ENGINE_ENV, None)
        else:
            os.environ[SLOW_ENGINE_ENV] = saved
    return hierarchy, results


def assert_engines_agree(records, bank_factory=default_prefetcher_bank,
                         prefetchers_enabled=True, split=None):
    """Both engines over the same records must agree on everything.

    ``split`` optionally cuts the records into two back-to-back runs to
    exercise warm-state continuation.
    """
    if split is None:
        traces = [Trace(records)]
    else:
        traces = [Trace(records[:split]), Trace(records[split:])]
    slow_h, slow_r = run_one(traces, True, bank_factory, prefetchers_enabled)
    fast_h, fast_r = run_one(traces, False, bank_factory, prefetchers_enabled)
    for got_slow, got_fast in zip(slow_r, fast_r):
        assert snapshot(slow_h, got_slow) == snapshot(fast_h, got_fast)


def make_records():
    """A deterministic trace exercising every record kind and edge."""
    records = []
    # Streaming loads with an 8-byte stride: mostly L1 hits.
    for i in range(600):
        records.append(MemoryAccess(address=i * 8, size=8, pc=1,
                                    function="stream"))
    # Multi-line stores (crosses 4 lines) with gaps.
    for i in range(200):
        records.append(MemoryAccess(
            address=1 << 20 | i * 256, size=256, kind=AccessKind.STORE,
            pc=2, function="writer", gap_cycles=3))
    # Software prefetches ahead of a strided reader.
    for i in range(200):
        records.append(MemoryAccess(
            address=(2 << 20) + (i + 8) * 64, size=64,
            kind=AccessKind.SOFTWARE_PREFETCH, pc=3, function="reader"))
        records.append(MemoryAccess(
            address=(2 << 20) + i * 64, size=64, pc=4, function="reader"))
    # A stream hint followed by the hinted region's accesses.
    records.append(MemoryAccess(
        address=3 << 20, size=64 * 64, kind=AccessKind.STREAM_HINT,
        pc=5, function="hinted"))
    for i in range(64):
        records.append(MemoryAccess(address=(3 << 20) + i * 64, size=64,
                                    pc=6, function="hinted"))
    # Pointer-chase style scattered misses (sequential-MLP edge cases:
    # adjacent-line pairs in both directions).
    base = 5 << 20
    for i in range(150):
        records.append(MemoryAccess(
            address=base + (i * 7919 % 4096) * 64, size=8, pc=7,
            function="chase", gap_cycles=i % 5))
    records.append(MemoryAccess(address=base, size=8, pc=7, function="chase"))
    records.append(MemoryAccess(address=base + 64, size=8, pc=7,
                                function="chase"))
    records.append(MemoryAccess(address=base + 128, size=8, pc=7,
                                function="chase"))
    return records


class TestDeterministicEquivalence:
    def test_mixed_kinds_prefetchers_on(self):
        assert_engines_agree(make_records())

    def test_mixed_kinds_prefetchers_off(self):
        assert_engines_agree(make_records(), prefetchers_enabled=False)

    def test_empty_bank(self):
        assert_engines_agree(make_records(),
                             bank_factory=lambda: PrefetcherBank([]))

    def test_warm_state_continuation(self):
        """Back-to-back runs on one hierarchy agree across engines."""
        assert_engines_agree(make_records(), split=700)

    def test_empty_trace(self):
        assert_engines_agree([])

    def test_mid_sequence_prefetcher_flip(self):
        """Snapshot invalidation: flip the bank between runs."""
        records = make_records()
        traces = [Trace(records[:500]), Trace(records[500:])]

        def run(slow):
            hierarchy = MemoryHierarchy()
            saved = os.environ.get(SLOW_ENGINE_ENV)
            try:
                if slow:
                    os.environ[SLOW_ENGINE_ENV] = "1"
                else:
                    os.environ.pop(SLOW_ENGINE_ENV, None)
                first = hierarchy.run(traces[0])
                hierarchy.set_hardware_prefetchers(False)
                second = hierarchy.run(traces[1])
            finally:
                if saved is None:
                    os.environ.pop(SLOW_ENGINE_ENV, None)
                else:
                    os.environ[SLOW_ENGINE_ENV] = saved
            return hierarchy, first, second

        slow_h, slow_a, slow_b = run(True)
        fast_h, fast_a, fast_b = run(False)
        assert snapshot(slow_h, slow_a) == snapshot(fast_h, fast_a)
        assert snapshot(slow_h, slow_b) == snapshot(fast_h, fast_b)


class TestEngineDispatch:
    def test_env_forces_interpreter(self, monkeypatch):
        """REPRO_SLOW_ENGINE=1 must never reach the compiled engine."""
        monkeypatch.setenv(SLOW_ENGINE_ENV, "1")

        def boom(self, compiled, result):
            raise AssertionError("compiled engine used despite slow-engine env")

        monkeypatch.setattr(MemoryHierarchy, "_run_compiled", boom)
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        result = hierarchy.run(Trace([MemoryAccess(address=0)]))
        assert result.total.loads == 1

    def test_trace_uses_compiled_engine(self, monkeypatch):
        monkeypatch.delenv(SLOW_ENGINE_ENV, raising=False)
        used = []
        original = MemoryHierarchy._run_compiled

        def spy(self, compiled, result):
            used.append(True)
            return original(self, compiled, result)

        monkeypatch.setattr(MemoryHierarchy, "_run_compiled", spy)
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        hierarchy.run(Trace([MemoryAccess(address=0)]))
        assert used

    def test_plain_iterable_uses_interpreter(self, monkeypatch):
        """Non-Trace record sequences take the interpreter path."""
        monkeypatch.delenv(SLOW_ENGINE_ENV, raising=False)

        def boom(self, compiled, result):
            raise AssertionError("compiled engine used for a non-Trace input")

        monkeypatch.setattr(MemoryHierarchy, "_run_compiled", boom)
        hierarchy = MemoryHierarchy(prefetchers=PrefetcherBank([]))
        result = hierarchy.run([MemoryAccess(address=0)])
        assert result.total.loads == 1

    def test_compile_is_cached_on_trace(self):
        trace = Trace([MemoryAccess(address=0)])
        assert trace.compile() is trace.compile()


record_strategy = st.builds(
    MemoryAccess,
    address=st.integers(min_value=0, max_value=1 << 22),
    size=st.integers(min_value=1, max_value=512),
    kind=st.sampled_from((AccessKind.LOAD, AccessKind.STORE,
                          AccessKind.SOFTWARE_PREFETCH,
                          AccessKind.STREAM_HINT)),
    pc=st.integers(min_value=0, max_value=9),
    function=st.sampled_from(("alpha", "beta", "gamma")),
    gap_cycles=st.integers(min_value=0, max_value=30),
)

records_strategy = st.lists(record_strategy, max_size=120)


class TestPropertyEquivalence:
    @given(records=records_strategy)
    @settings(max_examples=scaled(60), deadline=None)
    def test_random_traces_prefetchers_on(self, records):
        assert_engines_agree(records)

    @given(records=records_strategy)
    @settings(max_examples=scaled(60), deadline=None)
    def test_random_traces_prefetchers_off(self, records):
        assert_engines_agree(records, prefetchers_enabled=False)

    @given(records=records_strategy,
           split=st.integers(min_value=0, max_value=120))
    @settings(max_examples=scaled(30), deadline=None)
    def test_random_traces_split_runs(self, records, split):
        assert_engines_agree(records, split=min(split, len(records)))
