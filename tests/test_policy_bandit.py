"""Bandit exploration must be a private, stable, per-socket stream.

Mirrors ``test_machine_seed``: the seed derives from a namespaced
BLAKE2b hash (stable across processes and hash salts), and — the
fleet-determinism invariant — exploration consumes *zero* draws from
the machine RNG, so enabling or tuning the bandit can never perturb
the simulated fleet's noise streams.
"""

import hashlib
import os
import subprocess
import sys

import pytest

import repro
from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError
from repro.fleet.machine import Machine, machine_seed
from repro.fleet.platform import PLATFORM_1
from repro.policy import (EpsilonGreedyBanditPolicy, PolicyController,
                          feature_vector, policy_from_spec, policy_seed)
from repro.units import SECOND

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

PRINT_SEED = (
    "from repro.policy import EpsilonGreedyBanditPolicy, policy_seed\n"
    "policy = EpsilonGreedyBanditPolicy(seed=7, epsilon=0.5)\n"
    "policy.bind('m3/1')\n"
    "print(policy_seed(7, 'm3/1'), policy._rng.random())\n"
)


def run_with_hash_seed(hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC_DIR
    out = subprocess.run(
        [sys.executable, "-c", PRINT_SEED], env=env, capture_output=True,
        text=True, check=True)
    return out.stdout.strip()


class TestPolicySeed:
    def test_matches_blake2b_convention(self):
        digest = hashlib.blake2b(b"limoncello-policy:7:m3/1",
                                 digest_size=8).digest()
        expected = int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF
        assert policy_seed(7, "m3/1") == expected

    def test_namespace_disjoint_from_machine_seed(self):
        """A policy stream can never collide with a machine stream for
        the same textual identity."""
        assert policy_seed("m0") != machine_seed("m0")

    def test_distinct_idents_distinct_streams(self):
        seeds = {policy_seed(7, f"m0/{i}") for i in range(16)}
        assert len(seeds) == 16

    def test_stable_across_hash_salts(self):
        assert run_with_hash_seed("0") == run_with_hash_seed("4242")


class TestBanditDeterminism:
    def _decide_stream(self, seed=7, ident="m0/0", samples=40):
        policy = EpsilonGreedyBanditPolicy(seed=seed, epsilon=0.5)
        controller = PolicyController(policy, ident=ident)
        utils = [((i * 37) % 100) / 100.0 for i in range(samples)]
        return [controller.observe(i * SECOND, u).prefetchers_enabled
                for i, u in enumerate(utils)]

    def test_same_seed_same_ident_same_decisions(self):
        assert self._decide_stream() == self._decide_stream()

    def test_distinct_idents_explore_independently(self):
        assert self._decide_stream(ident="m0/0") \
            != self._decide_stream(ident="m0/1")

    def test_epsilon_zero_never_explores(self):
        policy = EpsilonGreedyBanditPolicy(seed=7, epsilon=0.0)
        controller = PolicyController(policy)
        for i in range(50):
            controller.observe(i * SECOND, (i % 10) / 10.0)
        assert policy.explorations == 0
        assert controller.policy_metrics.explorations == 0

    def test_exploration_counted_in_metrics(self):
        policy = EpsilonGreedyBanditPolicy(seed=7, epsilon=1.0)
        controller = PolicyController(policy)
        for i in range(20):
            controller.observe(i * SECOND, 0.5)
        assert controller.policy_metrics.explorations == policy.explorations
        assert policy.explorations > 0

    def test_learning_updates_flow_through_controller(self):
        policy = EpsilonGreedyBanditPolicy(seed=7, epsilon=0.2)
        controller = PolicyController(policy)
        for i in range(10):
            controller.observe(i * SECOND, 0.9)
        metrics = controller.policy_metrics
        assert metrics.learn_updates == 10 * len(policy.prefetchers)

    def test_reset_restarts_the_exploration_stream(self):
        policy = EpsilonGreedyBanditPolicy(seed=7, epsilon=0.5)
        policy.bind("m0/0")
        features = feature_vector(utilization=0.5)
        first = [policy.decide(i * SECOND, features) for i in range(10)]
        policy.reset()
        second = [policy.decide(i * SECOND, features) for i in range(10)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ConfigError):
            EpsilonGreedyBanditPolicy(epsilon=1.5)
        with pytest.raises(ConfigError):
            EpsilonGreedyBanditPolicy(buckets=0)


class TestFleetRNGIndependence:
    def test_bandit_consumes_zero_machine_rng_draws(self):
        """Deploying a bandit (any epsilon) leaves the machine's own RNG
        stream exactly where a stock deployment leaves it."""
        config = LimoncelloConfig(sample_period_ns=SECOND,
                                  sustain_duration_ns=3 * SECOND)

        def run_machine(policy_spec):
            machine = Machine("probe-7", PLATFORM_1, sockets=2)
            if policy_spec is None:
                machine.deploy_hard_limoncello(config)
            else:
                def factory(ident):
                    return PolicyController(policy_from_spec(policy_spec),
                                            config=config, ident=ident)
                machine.deploy_hard_limoncello(config, factory)
            for tick in range(12):
                machine.step(tick * SECOND)
            return machine._rng.getstate()

        stock = run_machine(None)
        greedy = run_machine(EpsilonGreedyBanditPolicy(seed=7, epsilon=0.0))
        explorer = run_machine(EpsilonGreedyBanditPolicy(seed=7, epsilon=0.9))
        assert stock == greedy == explorer
