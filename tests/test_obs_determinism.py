"""The observability determinism contract: worker count is invisible.

For the same study parameters, a serial run and a sharded parallel run
must write byte-identical ``events.jsonl`` files and manifests whose
deterministic ``run`` blocks digest equal. The wall-clock ``execution``
overlay is the only part allowed to differ.
"""

from tests.hypothesis_profiles import scaled
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import AblationStudy, RolloutStudy
from repro.obs import (
    EVENTS_NAME,
    manifest_run_digest,
    read_events_jsonl,
    read_manifest,
)


def _run_ablation(out_dir, workers, machines, seed, mode="hard"):
    AblationStudy(mode=mode, machines=machines, epochs=6, warmup_epochs=2,
                  seed=seed, shard_size=3).run(workers=workers,
                                               obs_dir=str(out_dir))
    return out_dir


class TestSerialEqualsSharded:
    @settings(max_examples=scaled(5), deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(machines=st.integers(min_value=4, max_value=9),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_ablation_logs_byte_identical(self, tmp_path, machines, seed):
        serial = _run_ablation(tmp_path / f"s-{machines}-{seed}",
                               workers=1, machines=machines, seed=seed)
        parallel = _run_ablation(tmp_path / f"p-{machines}-{seed}",
                                 workers=3, machines=machines, seed=seed)
        assert ((serial / EVENTS_NAME).read_bytes()
                == (parallel / EVENTS_NAME).read_bytes())
        assert (manifest_run_digest(read_manifest(serial))
                == manifest_run_digest(read_manifest(parallel)))

    def test_rollout_logs_byte_identical(self, tmp_path):
        def run(out_dir, workers):
            RolloutStudy(machines=8, epochs=6, warmup_epochs=2, seed=5,
                         shard_size=3).run(workers=workers,
                                           obs_dir=str(out_dir))
            return out_dir

        serial = run(tmp_path / "serial", workers=1)
        parallel = run(tmp_path / "parallel", workers=4)
        assert ((serial / EVENTS_NAME).read_bytes()
                == (parallel / EVENTS_NAME).read_bytes())
        assert (manifest_run_digest(read_manifest(serial))
                == manifest_run_digest(read_manifest(parallel)))

    def test_merged_log_validates_and_orders_shards(self, tmp_path):
        run_dir = _run_ablation(tmp_path / "run", workers=2, machines=7,
                                seed=11)
        events = read_events_jsonl(run_dir / EVENTS_NAME)  # validates
        assert [event["seq"] for event in events] == list(range(len(events)))
        shard_sequence = [event["shard"] for event in events
                          if event["shard"] is not None]
        # Shard events appear as contiguous plan-order blocks.
        assert shard_sequence == sorted(shard_sequence)
        starts = [event for event in events
                  if event["kind"] == "shard-start"]
        assert [event["index"] for event in starts] == [0, 1, 2]
        assert sum(event["machines"] for event in starts) == 7

    def test_seed_changes_the_log(self, tmp_path):
        first = _run_ablation(tmp_path / "a", workers=1, machines=6, seed=1)
        second = _run_ablation(tmp_path / "b", workers=1, machines=6, seed=2)
        assert (manifest_run_digest(read_manifest(first))
                != manifest_run_digest(read_manifest(second)))

    def test_execution_overlay_may_differ(self, tmp_path):
        serial = _run_ablation(tmp_path / "s", workers=1, machines=6, seed=3)
        parallel = _run_ablation(tmp_path / "p", workers=2, machines=6,
                                 seed=3)
        assert read_manifest(serial)["execution"]["workers"] == 1
        assert read_manifest(parallel)["execution"]["workers"] == 2


class TestChaosObservability:
    def test_chaos_run_writes_incident_events(self, tmp_path):
        from repro.analysis import ChaosStudy
        from repro.faults import FaultPlan

        plan = FaultPlan.parse(
            "seed=2;telemetry-blackout:start=200,duration=80")
        ChaosStudy(plan, machines=4, epochs=30, warmup_epochs=5, seed=11,
                   ).run(obs_dir=str(tmp_path / "run"))
        events = read_events_jsonl(tmp_path / "run" / EVENTS_NAME)
        kinds = {event["kind"] for event in events}
        assert "failsafe-engaged" in kinds
        assert "incident-open" in kinds
        manifest = read_manifest(tmp_path / "run")
        assert manifest["run"]["fault_plan"] is not None

    def test_chaos_serial_equals_sharded(self, tmp_path):
        from repro.analysis import ChaosStudy
        from repro.faults import FaultPlan

        def run(out_dir, workers):
            plan = FaultPlan.parse(
                "seed=3;telemetry-drop:rate=0.1;msr-transient:rate=0.3")
            ChaosStudy(plan, machines=6, epochs=20, warmup_epochs=5,
                       seed=7, shard_size=3).run(workers=workers,
                                                 obs_dir=str(out_dir))
            return out_dir

        serial = run(tmp_path / "serial", workers=1)
        parallel = run(tmp_path / "parallel", workers=2)
        assert ((serial / EVENTS_NAME).read_bytes()
                == (parallel / EVENTS_NAME).read_bytes())

    def test_baseline_twin_stays_dark(self, tmp_path, monkeypatch):
        # Even with $REPRO_OBS_DIR exported, only the faulted arm may
        # write a run directory — the baseline twin passes "".
        from repro.analysis import ChaosStudy
        from repro.faults import FaultPlan
        from repro.obs.session import OBS_ENV_VAR

        out = tmp_path / "env-run"
        monkeypatch.setenv(OBS_ENV_VAR, str(out))
        plan = FaultPlan.parse("seed=2;msr-transient:rate=0.2")
        ChaosStudy(plan, machines=4, epochs=15, warmup_epochs=4,
                   seed=9).run()
        events = read_events_jsonl(out / EVENTS_NAME)
        study_starts = [event for event in events
                        if event["kind"] == "study-start"]
        assert len(study_starts) == 1
        # If the inert twin had written last, its rate-zero plan — not
        # the injected one — would be in the manifest.
        assert "msr-transient" in read_manifest(out)["run"]["fault_plan"]
