"""Scenario subsystem tests: call graphs, noisy neighbors, determinism.

The scenario studies ride the same sharded/cached/checkpointed rails as
the fleet studies, so the same invariants must hold: results are
bit-identical across worker counts, shard sizes, and engines (proven by
digests), merges are associative, per-tenant attribution sums exactly
to the socket totals, and cache/checkpoint round-trips replay rather
than recompute.
"""

import copy

import pytest
from tests.hypothesis_profiles import scaled
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.scenarios import (CallGraphResult, CallGraphScenario,
                             DEFAULT_SERVICES, DEFAULT_TENANTS,
                             NoisyNeighborScenario, ServiceSpec,
                             TenantSpec, WORKLOAD_KINDS, callgraph_digest,
                             noisy_digest, parse_services, parse_tenants,
                             run_noisy_shard, scenario_mix_trace,
                             scenario_seed)

#: A small two-level graph cheap enough for determinism legs.
SMALL_SERVICES = "edge:mixed:2:8>leaf*2;leaf:random:1:6"
SMALL_TENANTS = "lat:stream:6,bat:random:10"


def small_callgraph(**overrides):
    kwargs = dict(services=SMALL_SERVICES, requests=6, seed=5, mode="off")
    kwargs.update(overrides)
    return CallGraphScenario(**kwargs)


def small_noisy(**overrides):
    kwargs = dict(tenants=SMALL_TENANTS, machines=3, epochs=4, seed=7,
                  mode="hard", sustain_ns=20_000.0)
    kwargs.update(overrides)
    return NoisyNeighborScenario(**kwargs)


class TestScenarioSeed:
    def test_stable_and_distinct(self):
        assert scenario_seed(3, "request", "auth", 0) == scenario_seed(
            3, "request", "auth", 0)
        assert scenario_seed(3, "request", "auth", 0) != scenario_seed(
            3, "request", "auth", 1)
        assert scenario_seed(3, "load", "auth", 0) != scenario_seed(
            3, "request", "auth", 0)


class TestParseServices:
    def test_default_topology(self):
        services = parse_services(DEFAULT_SERVICES)
        assert [s.name for s in services] == ["frontend", "auth", "cache",
                                              "storage"]
        frontend = services[0]
        assert frontend.calls == (("auth", 1), ("cache", 2))
        assert frontend.kind == "mixed"
        assert frontend.replicas == 2

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigError):
            parse_services("a:stream:2")

    def test_bad_fanout_edge_rejected(self):
        with pytest.raises(ConfigError):
            parse_services("a:stream:1:8>b")

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            parse_services("a:swizzle:1:8")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            parse_services(" ; ")

    def test_unknown_child_rejected(self):
        with pytest.raises(ConfigError):
            CallGraphScenario(services="a:stream:1:8>ghost*1")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            CallGraphScenario(services="a:stream:1:8;a:random:1:8")

    def test_cycle_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            CallGraphScenario(
                services="a:stream:1:8>b*1;b:random:1:8>a*1")
        assert "cycle" in str(excinfo.value)

    def test_nonpositive_fields_rejected(self):
        with pytest.raises(ConfigError):
            ServiceSpec(name="a", kind="stream", replicas=0)
        with pytest.raises(ConfigError):
            ServiceSpec(name="a", kind="stream", request_lines=0)
        with pytest.raises(ConfigError):
            ServiceSpec(name="a", kind="stream", calls=(("b", 0),))


class TestParseTenants:
    def test_default_pair(self):
        tenants = parse_tenants(DEFAULT_TENANTS)
        assert [t.name for t in tenants] == ["latency", "batch"]
        assert tenants[0].kind == "stream"
        assert tenants[1].lines == 96
        assert all(t.throttle == 1.0 for t in tenants)

    def test_throttle_parsed_and_applied(self):
        tenant, = parse_tenants("bat:random:40:0.25")
        assert tenant.throttle == 0.25
        assert tenant.effective_lines == 10

    def test_throttle_floor_is_one_line(self):
        assert TenantSpec("t", "random", lines=4,
                          throttle=0.1).effective_lines == 1

    def test_bad_specs_rejected(self):
        for text in ("bat", "bat:random", "bat:random:x",
                     "bat:swizzle:8", ""):
            with pytest.raises(ConfigError):
                parse_tenants(text)

    def test_throttle_bounds_rejected(self):
        for throttle in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigError):
                TenantSpec("t", "random", lines=8, throttle=throttle)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            NoisyNeighborScenario(tenants="a:stream:4,a:random:4")


class TestCallGraphDeterminism:
    def test_serial_equals_sharded_workers(self):
        serial = small_callgraph().run(workers=1)
        sharded = small_callgraph().run(workers=2)
        assert callgraph_digest(serial) == callgraph_digest(sharded)

    def test_batched_equals_scalar(self):
        batched = small_callgraph(batch_size=16).run()
        scalar = small_callgraph(batch_size=0).run()
        assert callgraph_digest(batched) == callgraph_digest(scalar)

    def test_seed_changes_result(self):
        assert callgraph_digest(small_callgraph().run()) != callgraph_digest(
            small_callgraph(seed=6).run())

    def test_merge_mismatch_rejected(self):
        result = small_callgraph().run()
        other = copy.deepcopy(result)
        other.mode = "control"
        with pytest.raises(ConfigError):
            result.merge(other)

    def test_row_order_is_plan_order(self):
        result = small_callgraph().run(workers=2)
        assert [row["service"] for row in result.rows] == (
            ["edge"] * 2 + ["leaf"])


class TestCallGraphSLO:
    def test_end_to_end_assembly(self):
        scenario = small_callgraph()
        result = scenario.run()
        e2e = scenario.end_to_end_latencies(result)
        assert len(e2e) == scenario.requests
        edge_rows = [row for row in result.rows if row["service"] == "edge"]
        leaf_rows = [row for row in result.rows if row["service"] == "leaf"]
        for index in range(scenario.requests):
            own = edge_rows[index % 2]["request_latency_ns"][index]
            child = leaf_rows[0]["request_latency_ns"][index]
            expected = own + 2 * (scenario.rpc_overhead_ns + child)
            assert e2e[index] == pytest.approx(expected, rel=1e-12)

    def test_slo_summary_percentiles_ordered(self):
        scenario = small_callgraph()
        slo = scenario.slo_summary(scenario.run())
        assert 0 < slo.p50 <= slo.p90 <= slo.p99 <= slo.peak

    def test_all_down_service_fails_fast(self):
        # A hand-built result with the leaf entirely down: the edge
        # still pays the RPC overhead, the leaf contributes zero own
        # latency.
        scenario = small_callgraph(requests=2)
        result = scenario.run()
        for row in result.rows:
            if row["service"] == "leaf":
                row["down"] = True
        e2e = scenario.end_to_end_latencies(result)
        edge_rows = [row for row in result.rows if row["service"] == "edge"]
        for index in range(2):
            own = edge_rows[index % 2]["request_latency_ns"][index]
            assert e2e[index] == pytest.approx(
                own + 2 * scenario.rpc_overhead_ns, rel=1e-12)

    def test_service_summary_none_when_all_down(self):
        result = CallGraphResult(mode="off", requests=1, replicas=1,
                                 down=1, rows=[{
                                     "service": "a", "replica": "a/r0",
                                     "external_load": 0.0, "down": True,
                                     "elapsed_ns": 0.0, "llc_misses": 0,
                                     "dram_demand_bytes": 0,
                                     "dram_wait_ns": 0.0,
                                     "request_latency_ns": []}])
        assert result.service_summary("a") is None

    def test_fault_plan_supplies_crash_rate(self):
        plan = FaultPlan.parse("seed=3;machine-crash:rate=0.5")
        scenario = small_callgraph(fault_plan=plan)
        assert scenario.crash_rate == 0.5
        explicit = small_callgraph(crash_rate=0.25, fault_plan=plan)
        assert explicit.crash_rate == 0.25


class TestNoisyDeterminism:
    def test_shard_size_invariance(self):
        whole = small_noisy(shard_size=32).run()
        split = small_noisy(shard_size=1).run()
        assert noisy_digest(whole) == noisy_digest(split)

    def test_worker_invariance(self):
        serial = small_noisy(shard_size=1).run(workers=1)
        parallel = small_noisy(shard_size=1).run(workers=2)
        assert noisy_digest(serial) == noisy_digest(parallel)

    def test_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = small_noisy()
        digest = noisy_digest(first.run(cache_dir=cache_dir))
        second = small_noisy()
        replayed = second.run(cache_dir=cache_dir)
        assert noisy_digest(replayed) == digest
        assert second.queue_stats is None  # whole-study cache hit

    def test_checkpoint_restores_all_shards(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        first = small_noisy(shard_size=1)
        digest = noisy_digest(first.run(checkpoint_dir=checkpoint))
        assert first.queue_stats.computed == 3
        second = small_noisy(shard_size=1)
        replayed = second.run(checkpoint_dir=checkpoint)
        assert noisy_digest(replayed) == digest
        assert second.queue_stats.restored == 3
        assert second.queue_stats.computed == 0

    def test_obs_session_is_deterministic(self, tmp_path):
        import pathlib
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        small_noisy(shard_size=1).run(workers=1, obs_dir=str(serial_dir))
        small_noisy(shard_size=1).run(workers=2, obs_dir=str(parallel_dir))

        def events(root):
            run_dir = pathlib.Path(root)
            assert (run_dir / "manifest.json").exists()
            return (run_dir / "events.jsonl").read_text()

        assert events(serial_dir) == events(parallel_dir)

    def test_mode_changes_result(self):
        assert noisy_digest(small_noisy().run()) != noisy_digest(
            small_noisy(mode="enabled").run())

    def test_baseline_twin_is_enabled_same_traffic(self):
        scenario = small_noisy()
        twin = scenario.baseline_twin()
        assert twin.mode == "enabled"
        assert twin.seed == scenario.seed
        assert twin.tenants == scenario.tenants

    def test_policy_requires_mode_and_vice_versa(self):
        from repro.policy import SingleThresholdPolicy
        with pytest.raises(ConfigError):
            small_noisy(mode="policy")
        with pytest.raises(ConfigError):
            small_noisy(policy=SingleThresholdPolicy())
        scenario = small_noisy(mode="policy",
                               policy=SingleThresholdPolicy(threshold=0.8))
        assert scenario.policy is not None
        assert "policy" in scenario.cache_key_material()
        assert "policy" not in small_noisy().cache_key_material()

    def test_policy_mode_runs_and_flips(self):
        from repro.policy import SingleThresholdPolicy
        scenario = small_noisy(mode="policy",
                               policy=SingleThresholdPolicy(threshold=0.7))
        result = scenario.run()
        assert result.machines == 3
        assert 0.0 <= result.duty_cycle_disabled() <= 1.0


class TestNoisyInterference:
    def test_hard_mode_helps_hostile_hurts_streaming(self):
        # The headline tension at the default scale: the socket-level
        # disable slows the streaming tenant's P99 and does not slow the
        # random-lookup antagonist.
        scenario = NoisyNeighborScenario(machines=4, epochs=8, seed=23,
                                         mode="hard", sustain_ns=20_000.0)
        result = scenario.run()
        assert result.duty_cycle_disabled() > 0.0
        assert result.transitions() > 0
        baseline = scenario.baseline_twin().run()
        comparison = scenario.compare_to_baseline(result, baseline)
        assert comparison["latency"]["p99"] > 0.0
        assert comparison["batch"]["p99"] <= 0.0

    def test_throttle_reduces_antagonist_share(self):
        full = small_noisy(mode="enabled").run()
        throttled = small_noisy(tenants="lat:stream:6,bat:random:10:0.4",
                                mode="enabled").run()
        assert (throttled.bandwidth_shares()["bat"]
                < full.bandwidth_shares()["bat"])

    def test_disabled_mode_has_full_duty_cycle(self):
        result = small_noisy(mode="disabled").run()
        assert result.duty_cycle_disabled() == 1.0
        assert result.transitions() == 0


# --- hypothesis properties -------------------------------------------------------

tenant_kind = st.sampled_from(WORKLOAD_KINDS)
tenant_lines = st.integers(min_value=1, max_value=12)


def build_tenants(kinds_and_lines):
    return tuple(TenantSpec(name=f"t{index}", kind=kind, lines=lines)
                 for index, (kind, lines) in enumerate(kinds_and_lines))


class TestTenantAttributionProperties:
    @settings(max_examples=scaled(10), deadline=None)
    @given(st.lists(st.tuples(tenant_kind, tenant_lines),
                    min_size=2, max_size=3),
           st.sampled_from(("enabled", "disabled", "hard")),
           st.integers(min_value=0, max_value=2 ** 20))
    def test_tenant_bytes_sum_exactly_to_socket_total(
            self, kinds_and_lines, mode, seed):
        """Per-tenant demand bytes are an exact partition of the socket
        total under co-location — attribution never loses or invents a
        byte, in any controller mode."""
        scenario = NoisyNeighborScenario(
            tenants=build_tenants(kinds_and_lines), machines=2, epochs=3,
            seed=seed, mode=mode, sustain_ns=15_000.0)
        result = scenario.run()
        total = result.total_demand_bytes()
        attributed = sum(result.tenant_demand_bytes(name)
                         for name in result.tenant_names)
        assert attributed == total  # exact ints, no tolerance
        shares = result.bandwidth_shares()
        if total:
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-12)
        else:
            assert all(value == 0.0 for value in shares.values())


@pytest.fixture(scope="module")
def noisy_shards():
    """Four single-machine shard results from one scenario, simulated
    once and deep-copied per example."""
    scenario = NoisyNeighborScenario(
        tenants=SMALL_TENANTS, machines=4, epochs=3, seed=11,
        mode="hard", sustain_ns=15_000.0, shard_size=1)
    return [run_noisy_shard(spec) for spec in scenario.shard_specs()]


class TestNoisyMergeProperties:
    @settings(max_examples=scaled(20), deadline=None)
    @given(st.integers(min_value=1, max_value=3))
    def test_merge_associative_at_any_split(self, noisy_shards, split):
        """``(a+b)+c == a+(b+c)`` for any grouping of the shard stream —
        the algebra that makes serial == sharded bit-identical."""
        shards = [copy.deepcopy(shard) for shard in noisy_shards]
        left = shards[0]
        for shard in shards[1:split]:
            left.merge(shard)
        rest = shards[split]
        for shard in shards[split + 1:]:
            rest.merge(shard)
        grouped = left.merge(rest)

        flat = copy.deepcopy(noisy_shards[0])
        for shard in noisy_shards[1:]:
            flat.merge(copy.deepcopy(shard))
        assert noisy_digest(grouped) == noisy_digest(flat)

    def test_merged_equals_serial_run(self, noisy_shards):
        scenario = NoisyNeighborScenario(
            tenants=SMALL_TENANTS, machines=4, epochs=3, seed=11,
            mode="hard", sustain_ns=15_000.0, shard_size=32)
        flat = copy.deepcopy(noisy_shards[0])
        for shard in noisy_shards[1:]:
            flat.merge(copy.deepcopy(shard))
        assert noisy_digest(scenario.run()) == noisy_digest(flat)


class TestScenarioMixBridge:
    def test_trace_is_deterministic(self):
        first = scenario_mix_trace(3, scale=0.5)
        second = scenario_mix_trace(3, scale=0.5)
        assert [record.address for record in first] == [
            record.address for record in second]
        assert len(first) > 0

    def test_scale_and_seed_change_trace(self):
        base = scenario_mix_trace(3, scale=0.5)
        assert len(scenario_mix_trace(3, scale=1.0)) > len(base)
        other = scenario_mix_trace(4, scale=0.5)
        assert ([record.address for record in base]
                != [record.address for record in other])

    def test_memoized(self):
        from repro.workloads.memo import (clear_trace_memo,
                                          memoized_scenario_mix)
        clear_trace_memo()
        try:
            first = memoized_scenario_mix(3, 0.5)
            assert memoized_scenario_mix(3, 0.5) is first
        finally:
            clear_trace_memo()

    def test_sweep_workload_bridge(self):
        from repro.fleet import MicroFleetSweep, sweep_digest
        scenario = MicroFleetSweep(machines=2, seed=3, scale=0.25,
                                   workload="scenario")
        fleet = MicroFleetSweep(machines=2, seed=3, scale=0.25)
        digest = sweep_digest(scenario.run())
        assert digest != sweep_digest(fleet.run())
        again = MicroFleetSweep(machines=2, seed=3, scale=0.25,
                                workload="scenario")
        assert sweep_digest(again.run(workers=2)) == digest

    def test_workload_in_keys_only_when_set(self):
        from repro.fleet import MicroFleetSweep
        plain = MicroFleetSweep(machines=2, seed=3)
        bridged = MicroFleetSweep(machines=2, seed=3, workload="scenario")
        default = MicroFleetSweep(machines=2, seed=3,
                                  workload="fleetbench")
        assert "workload" not in plain.cache_key_material()
        assert bridged.cache_key_material()["workload"] == "scenario"
        # "fleetbench" normalizes to the default so keys are unchanged.
        assert default.cache_key_material() == plain.cache_key_material()
        assert (bridged.shard_task_materials()
                != plain.shard_task_materials())

    def test_unknown_workload_rejected(self):
        from repro.fleet import MicroFleetSweep
        with pytest.raises(ConfigError):
            MicroFleetSweep(machines=2, workload="swizzle")
