"""Tests for the Limoncello control daemon."""

import random

import pytest

from repro.core import (
    CallbackActuator,
    LimoncelloConfig,
    LimoncelloDaemon,
    MSRPrefetcherActuator,
    SingleThresholdController,
)
from repro.msr import FaultyMSRFile, INTEL_LIKE_MAP, MSRFile
from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource
from repro.units import SECOND


def scripted_daemon(profile, saturation=100.0, sustain=2.0 * SECOND,
                    dropout=0.0, msrs=None, rng=None):
    source = ScriptedBandwidthSource(profile, saturation_bandwidth=saturation)
    sampler = PerfBandwidthSampler(source, dropout_rate=dropout, rng=rng)
    msrs = msrs if msrs is not None else MSRFile()
    actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP)
    config = LimoncelloConfig(sustain_duration_ns=sustain)
    return LimoncelloDaemon(sampler, actuator, config), msrs


class TestControlLoop:
    def test_high_load_disables_prefetchers_in_msrs(self):
        daemon, msrs = scripted_daemon([(0.0, 90.0)])
        daemon.run(10 * SECOND)
        assert INTEL_LIKE_MAP.all_disabled(msrs)

    def test_low_load_keeps_prefetchers_enabled(self):
        daemon, msrs = scripted_daemon([(0.0, 30.0)])
        daemon.run(10 * SECOND)
        assert INTEL_LIKE_MAP.all_enabled(msrs)
        assert daemon.report.transitions == 0

    def test_load_cycle_toggles_and_recovers(self):
        profile = [(0.0, 90.0), (10 * SECOND, 40.0)]
        daemon, msrs = scripted_daemon(profile)
        daemon.run(20 * SECOND)
        assert daemon.report.transitions == 2
        assert INTEL_LIKE_MAP.all_enabled(msrs)

    def test_report_series_lengths(self):
        daemon, _ = scripted_daemon([(0.0, 50.0)])
        report = daemon.run(5 * SECOND)
        assert report.samples == 5
        assert len(report.utilization) == 5
        assert len(report.prefetcher_state) == 5

    def test_duty_cycle(self):
        daemon, _ = scripted_daemon([(0.0, 90.0)], sustain=0.0)
        report = daemon.run(10 * SECOND)
        assert report.duty_cycle_disabled() == 1.0

    def test_negative_duration_rejected(self):
        daemon, _ = scripted_daemon([(0.0, 50.0)])
        with pytest.raises(ValueError):
            daemon.run(-1.0)


class TestFaultTolerance:
    def test_telemetry_dropouts_hold_state(self):
        daemon, msrs = scripted_daemon(
            [(0.0, 90.0)], dropout=0.3, rng=random.Random(5))
        report = daemon.run(60 * SECOND)
        assert report.dropouts > 0
        assert report.samples + report.dropouts == 60
        # Despite dropouts, sustained high load still disabled prefetchers.
        assert INTEL_LIKE_MAP.all_disabled(msrs)

    def test_failed_actuation_retried_next_tick(self):
        msrs = FaultyMSRFile(failure_rate=0.7, rng=random.Random(11))
        source = ScriptedBandwidthSource([(0.0, 90.0)],
                                         saturation_bandwidth=100.0)
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP, retries=1)
        daemon = LimoncelloDaemon(
            PerfBandwidthSampler(source), actuator,
            LimoncelloConfig(sustain_duration_ns=0.0))
        daemon.run(30 * SECOND)
        # Eventually converges despite 70% write failure rate.
        assert INTEL_LIKE_MAP.all_disabled(msrs)

    def test_external_msr_perturbation_reconverged(self):
        """If firmware or an operator re-enables prefetchers behind the
        daemon's back, readback detects it and the daemon re-disables."""
        daemon, msrs = scripted_daemon([(0.0, 90.0)], sustain=0.0)
        daemon.step(0.0)
        assert INTEL_LIKE_MAP.all_disabled(msrs)
        INTEL_LIKE_MAP.enable_all(msrs)  # external interference
        daemon.step(1.0 * SECOND)
        assert INTEL_LIKE_MAP.all_disabled(msrs)


class TestCustomController:
    def test_daemon_accepts_alternative_controller(self):
        source = ScriptedBandwidthSource([(0.0, 90.0)],
                                         saturation_bandwidth=100.0)
        actuator = CallbackActuator(lambda e: None)
        daemon = LimoncelloDaemon(
            PerfBandwidthSampler(source), actuator,
            controller=SingleThresholdController(threshold=0.8))
        daemon.step(0.0)
        assert not actuator.is_enabled()
