"""Tests for heterogeneous (multi-platform) fleets."""

import pytest

from repro.errors import ConfigError
from repro.fleet import Fleet, PLATFORM_1, PLATFORM_2


class TestPlatformMix:
    def test_default_is_homogeneous(self):
        fleet = Fleet(machines=4, seed=1)
        assert {m.platform for m in fleet.machines} == {PLATFORM_1}

    def test_mix_proportions(self):
        fleet = Fleet(machines=10, seed=1,
                      platform_mix={PLATFORM_1: 0.6, PLATFORM_2: 0.4})
        counts = {}
        for machine in fleet.machines:
            counts[machine.platform] = counts.get(machine.platform, 0) + 1
        assert counts[PLATFORM_1] == 6
        assert counts[PLATFORM_2] == 4

    def test_mixed_fleet_uses_both_vendor_msr_layouts(self):
        from repro.fleet.platform import platform_by_name
        intel_like = platform_by_name("gen-2018")
        fleet = Fleet(machines=4, seed=1,
                      platform_mix={intel_like: 0.5, PLATFORM_2: 0.5})
        vendors = {m.platform.vendor for m in fleet.machines}
        assert vendors == {"intel-like", "amd-like"}
        registers = {tuple(s.msr_map.registers)
                     for m in fleet.machines for s in m.sockets}
        assert len(registers) == 2

    def test_mixed_fleet_runs_and_controls(self):
        fleet = Fleet(machines=6, seed=2,
                      platform_mix={PLATFORM_1: 0.5, PLATFORM_2: 0.5})
        fleet.deploy_hard_limoncello()
        metrics = fleet.run(30)
        assert metrics.total_qps > 0
        # Daemons actuate both register layouts without error.
        toggles = sum(s.toggles for m in fleet.machines
                      for s in m.sockets)
        assert toggles >= 0

    def test_both_platforms_host_work(self):
        fleet = Fleet(machines=8, seed=3,
                      platform_mix={PLATFORM_1: 0.5, PLATFORM_2: 0.5})
        fleet.run(25)
        by_platform = {}
        for machine in fleet.machines:
            by_platform.setdefault(machine.platform, []).append(
                machine.cores_used)
        assert sum(by_platform[PLATFORM_1]) > 0
        assert sum(by_platform[PLATFORM_2]) > 0

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigError):
            Fleet(machines=4, platform_mix={PLATFORM_1: 0.0})
