"""Tests for repro.memsys.cache."""

import pytest

from repro.errors import ConfigError
from repro.memsys import CacheConfig, SetAssociativeCache


def small_cache(sets=2, ways=2):
    return SetAssociativeCache(CacheConfig(
        "test", size_bytes=sets * ways * 64, associativity=ways,
        hit_latency_cycles=4))


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig("L1", size_bytes=32 * 1024, associativity=8,
                             hit_latency_cycles=4)
        assert config.num_sets == 64

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=1000, associativity=3,
                        hit_latency_cycles=1)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=1024, associativity=2,
                        hit_latency_cycles=1, line_bytes=96)


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000)
        cache.install(0x1000)
        assert cache.lookup(0x1000)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_sets(self):
        cache = small_cache(sets=2, ways=1)
        cache.install(0x0)    # set 0
        cache.install(0x40)   # set 1
        assert cache.lookup(0x0)
        assert cache.lookup(0x40)

    def test_contains_does_not_count(self):
        cache = small_cache()
        cache.install(0x0)
        assert cache.contains(0x0)
        assert not cache.contains(0x40)
        assert cache.hits == 0
        assert cache.misses == 0


class TestLRU:
    def test_lru_eviction_order(self):
        cache = small_cache(sets=1, ways=2)
        cache.install(0x0)
        cache.install(0x40)
        cache.lookup(0x0)          # make 0x0 MRU
        victim = cache.install(0x80)
        assert victim.line == 0x40

    def test_install_refreshes_lru(self):
        cache = small_cache(sets=1, ways=2)
        cache.install(0x0)
        cache.install(0x40)
        cache.install(0x0)         # refresh
        victim = cache.install(0x80)
        assert victim.line == 0x40

    def test_no_eviction_when_room(self):
        cache = small_cache(sets=1, ways=2)
        assert cache.install(0x0) is None
        assert cache.install(0x40) is None


class TestPrefetchAccounting:
    def test_wasted_prefetch_counted_on_eviction(self):
        cache = small_cache(sets=1, ways=1)
        cache.install(0x0, prefetched=True)
        cache.install(0x40)
        assert cache.wasted_prefetches == 1

    def test_used_prefetch_not_wasted(self):
        cache = small_cache(sets=1, ways=1)
        cache.install(0x0, prefetched=True)
        cache.lookup(0x0)
        cache.install(0x40)
        assert cache.wasted_prefetches == 0
        assert cache.prefetch_hits == 1

    def test_prefetch_hit_counted_once(self):
        cache = small_cache()
        cache.install(0x0, prefetched=True)
        cache.lookup(0x0)
        cache.lookup(0x0)
        assert cache.prefetch_hits == 1

    def test_demand_eviction_not_wasted(self):
        cache = small_cache(sets=1, ways=1)
        cache.install(0x0)
        cache.install(0x40)
        assert cache.wasted_prefetches == 0


class TestMaintenance:
    def test_invalidate(self):
        cache = small_cache()
        cache.install(0x0)
        assert cache.invalidate(0x0)
        assert not cache.contains(0x0)
        assert not cache.invalidate(0x0)

    def test_flush_preserves_counters(self):
        cache = small_cache()
        cache.lookup(0x0)
        cache.install(0x0)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.misses == 1

    def test_occupancy(self):
        cache = small_cache(sets=2, ways=2)
        cache.install(0x0)
        cache.install(0x40)
        assert cache.occupancy == 2

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0x0)
        cache.install(0x0)
        cache.lookup(0x0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_miss_rate_no_accesses(self):
        assert small_cache().miss_rate == 0.0


class TestOccupancyCounter:
    """occupancy is maintained incrementally; it must always equal the
    brute-force sum over the sets."""

    @staticmethod
    def brute_force(cache):
        return sum(len(s) for s in cache._sets.values())

    def test_tracks_installs_and_evictions(self):
        cache = small_cache(sets=2, ways=2)
        rng = __import__("random").Random(3)
        for _ in range(500):
            line = rng.randrange(64) * 64
            op = rng.randrange(4)
            if op == 0:
                cache.install(line, prefetched=bool(rng.randrange(2)))
            elif op == 1:
                cache.lookup(line)
            elif op == 2:
                cache.invalidate(line)
            else:
                cache.contains(line)
            assert cache.occupancy == self.brute_force(cache)

    def test_reinstall_does_not_double_count(self):
        cache = small_cache()
        cache.install(0x0)
        cache.install(0x0)
        assert cache.occupancy == 1

    def test_flush_resets(self):
        cache = small_cache()
        cache.install(0x0)
        cache.install(0x40)
        cache.flush()
        assert cache.occupancy == 0
        cache.install(0x80)
        assert cache.occupancy == 1

    def test_capacity_bound(self):
        cache = small_cache(sets=2, ways=2)
        for i in range(32):
            cache.install(i * 64)
        assert cache.occupancy == self.brute_force(cache) <= 4
