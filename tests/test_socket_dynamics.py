"""Tests for socket-level dynamics: toggle costs, damping, saturation."""

import pytest

from repro.fleet import PLATFORM_1, SimulatedSocket, Task
from repro.units import SECOND


def task(name="t", cores=8.0, bandwidth=35.0, mb=0.4, sigma=0.0):
    return Task(name=name, cores=cores, base_qps=100.0 * cores,
                bandwidth_demand=bandwidth, memory_boundedness=mb,
                function_shares={"memcpy": 0.3, "pointer_chase": 0.7},
                noise_sigma=sigma)


def loaded_socket(tasks=4, bandwidth=35.0):
    socket = SimulatedSocket(PLATFORM_1)
    for index in range(tasks):
        socket.add_task(task(name=f"t{index}", bandwidth=bandwidth))
    return socket


class TestTogglePenalty:
    def test_toggle_costs_one_epoch_of_qps(self):
        socket = loaded_socket()
        steady = socket.step(0.0).qps
        socket.force_prefetchers(False)
        toggled = socket.step(1 * SECOND).qps
        socket.step(2 * SECOND)  # settle in the new state
        settled = socket.step(3 * SECOND).qps
        assert socket.toggles == 1
        # The toggle epoch pays the penalty relative to the settled state.
        assert toggled < settled
        assert toggled == pytest.approx(
            settled * (1 - SimulatedSocket.TOGGLE_PENALTY), rel=0.05)

    def test_no_toggle_no_penalty(self):
        socket = loaded_socket()
        socket.step(0.0)
        socket.step(1 * SECOND)
        assert socket.toggles == 0

    def test_toggle_counted_each_flip(self):
        socket = loaded_socket()
        socket.step(0.0)
        for tick in range(1, 5):
            socket.force_prefetchers(tick % 2 == 0)
            socket.step(tick * SECOND)
        assert socket.toggles == 4


class TestFixedPointStability:
    def test_no_oscillation_under_heavy_overload(self):
        """The damped iteration must settle even far past the knee."""
        socket = loaded_socket(tasks=5, bandwidth=45.0)
        values = [socket.step(t * SECOND).bandwidth for t in range(6)]
        # Consecutive steady-state epochs agree closely.
        for a, b in zip(values[2:], values[3:]):
            assert b == pytest.approx(a, rel=0.02)

    def test_saturated_flag(self):
        socket = loaded_socket(tasks=5, bandwidth=45.0)
        epoch = socket.step(0.0)
        assert epoch.saturated
        idle = SimulatedSocket(PLATFORM_1).step(0.0)
        assert not idle.saturated

    def test_latency_never_below_unloaded(self):
        socket = loaded_socket()
        epoch = socket.step(0.0)
        assert epoch.latency_ns >= socket.latency_at(0.0)


class TestSoftDeploymentDynamics:
    def test_soft_only_matters_when_prefetchers_off(self):
        """Soft Limoncello is inert while hardware prefetchers run."""
        def qps(soft, hw):
            socket = loaded_socket(tasks=2, bandwidth=10.0)
            socket.soft_deployed = soft
            socket.force_prefetchers(hw)
            return socket.step(0.0).qps

        assert qps(soft=True, hw=True) == pytest.approx(
            qps(soft=False, hw=True))
        assert qps(soft=True, hw=False) > qps(soft=False, hw=False)
