"""Tests for the hardened daemon: retry policy, fail-safe, incidents."""

import math
import random

import pytest

from repro.core import (
    DaemonReport,
    LimoncelloConfig,
    LimoncelloDaemon,
    MSRPrefetcherActuator,
    RetryPolicy,
)
from repro.errors import ConfigError, TelemetryError
from repro.msr import DegradingMSRFile, FaultyMSRFile, INTEL_LIKE_MAP, MSRFile
from repro.telemetry import PerfBandwidthSampler, ScriptedBandwidthSource
from repro.telemetry.sampler import BandwidthSample
from repro.units import SECOND


class DarkSampler:
    """Telemetry that goes dark during [start, end) and works otherwise."""

    def __init__(self, utilization=0.9, dark_from=None, dark_until=None):
        self.utilization = utilization
        self.dark_from = dark_from
        self.dark_until = dark_until

    def sample(self, now_ns):
        if (self.dark_from is not None
                and self.dark_from <= now_ns
                and (self.dark_until is None or now_ns < self.dark_until)):
            raise TelemetryError("dark")
        return BandwidthSample(time_ns=now_ns, bandwidth=90.0,
                               utilization=self.utilization)


class FlakyActuator:
    """Fails the first ``failures`` set_enabled calls, then succeeds."""

    def __init__(self, failures, initial_enabled=True):
        self.failures_left = failures
        self._enabled = initial_enabled
        self.attempts = 0
        self.attempt_times = []

    def set_enabled(self, enabled):
        self.attempts += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            return False
        self._enabled = enabled
        return True

    def is_enabled(self):
        return self._enabled


def make_daemon(sampler, actuator, **config_kwargs):
    config_kwargs.setdefault("sustain_duration_ns", 0.0)
    return LimoncelloDaemon(sampler, actuator,
                            LimoncelloConfig(**config_kwargs))


class TestRetryPolicy:
    def test_defaults_are_legacy_unbounded(self):
        policy = RetryPolicy()
        assert policy.max_attempts is None
        assert policy.backoff_ns(1) == 0.0
        assert policy.backoff_ns(10) == 0.0

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy.exponential(initial_backoff_ns=1.0 * SECOND,
                                         backoff_multiplier=2.0,
                                         max_backoff_ns=5.0 * SECOND)
        assert policy.backoff_ns(1) == 1.0 * SECOND
        assert policy.backoff_ns(2) == 2.0 * SECOND
        assert policy.backoff_ns(3) == 4.0 * SECOND
        assert policy.backoff_ns(4) == 5.0 * SECOND  # capped

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(initial_backoff_ns=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(initial_backoff_ns=10.0, max_backoff_ns=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_ns(0)

    def test_backoff_spaces_attempts(self):
        actuator = FlakyActuator(failures=100)
        daemon = make_daemon(
            DarkSampler(utilization=0.9), actuator,
            retry_policy=RetryPolicy(initial_backoff_ns=3.0 * SECOND,
                                     backoff_multiplier=1.0,
                                     max_backoff_ns=3.0 * SECOND))
        for tick in range(10):
            daemon.step(tick * SECOND)
        # First attempt at t=0, then one attempt every 3 s of backoff:
        # t=0, 3, 6, 9 -> 4 attempts, not 10.
        assert actuator.attempts == 4

    def test_bounded_attempts_give_up_until_decision_changes(self):
        actuator = FlakyActuator(failures=100)
        daemon = make_daemon(
            DarkSampler(utilization=0.9), actuator,
            retry_policy=RetryPolicy(max_attempts=3))
        for tick in range(10):
            daemon.step(tick * SECOND)
        assert actuator.attempts == 3
        assert daemon.report.actuation_failures == 3
        (incident,) = daemon.report.incidents
        assert incident.kind == "actuation-failure"
        assert "gave up after 3 attempts" in incident.action
        assert not incident.resolved

    def test_fresh_budget_for_new_target_state(self):
        actuator = FlakyActuator(failures=100)
        sampler = DarkSampler(utilization=0.9)
        daemon = make_daemon(sampler, actuator,
                             retry_policy=RetryPolicy(max_attempts=2))
        daemon.step(0.0)
        daemon.step(1.0 * SECOND)
        assert actuator.attempts == 2  # budget for "disable" exhausted
        sampler.utilization = 0.1  # decision flips to "enable"...
        actuator._enabled = False  # ...and the state genuinely differs
        daemon.step(2.0 * SECOND)
        assert actuator.attempts == 3  # new target, new budget


class TestRetryPending:
    def test_msr_write_failure_recovers_via_retry_pending(self):
        """A failed MSR write is retried on later (even sampleless)
        ticks until the register file recovers."""
        msrs = FaultyMSRFile(failure_rate=0.9, rng=random.Random(3))
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP, retries=1)
        sampler = DarkSampler(utilization=0.9, dark_from=1.0 * SECOND)
        daemon = make_daemon(sampler, actuator)
        daemon.step(0.0)  # decision: disable; write very likely fails
        for tick in range(1, 40):  # telemetry dark; retries continue
            daemon.step(tick * SECOND)
        assert INTEL_LIKE_MAP.all_disabled(msrs)
        assert daemon.report.actuation_failures > 0
        # The actuation-failure incident closed when a retry landed.
        failures = [i for i in daemon.report.incidents
                    if i.kind == "actuation-failure"]
        assert failures and all(i.resolved for i in failures)

    def test_permanently_dead_msrs_bound_by_policy(self):
        msrs = DegradingMSRFile(fail_after_writes=0)
        actuator = MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP, retries=1)
        daemon = make_daemon(
            DarkSampler(utilization=0.9), actuator,
            retry_policy=RetryPolicy(max_attempts=4))
        for tick in range(20):
            daemon.step(tick * SECOND)
        assert daemon.report.actuation_attempts == 4
        assert msrs.failed_writes == 4


class TestSampleValidation:
    def test_nan_sample_treated_as_dropout(self):
        class NaNSampler:
            def sample(self, now_ns):
                return BandwidthSample(time_ns=now_ns, bandwidth=math.nan,
                                       utilization=math.nan)

        actuator = FlakyActuator(failures=0)
        daemon = make_daemon(NaNSampler(), actuator)
        for tick in range(5):
            daemon.step(tick * SECOND)
        report = daemon.report
        assert report.samples == 0
        assert report.dropouts == 5
        assert report.invalid_samples == 5
        assert actuator.is_enabled()  # garbage never flipped state

    def test_stale_sample_treated_as_dropout(self):
        class StaleSampler:
            def sample(self, now_ns):
                return BandwidthSample(time_ns=now_ns - 5.0 * SECOND,
                                       bandwidth=90.0, utilization=0.9)

        daemon = make_daemon(StaleSampler(), FlakyActuator(failures=0))
        daemon.step(10.0 * SECOND)
        assert daemon.report.invalid_samples == 1
        assert daemon.report.samples == 0

    def test_fresh_sample_accepted(self):
        daemon = make_daemon(DarkSampler(utilization=0.5),
                             FlakyActuator(failures=0))
        daemon.step(10.0 * SECOND)
        assert daemon.report.samples == 1
        assert daemon.report.invalid_samples == 0


class TestFailsafe:
    def test_failsafe_engages_within_deadline(self):
        sampler = DarkSampler(utilization=0.9, dark_from=5.0 * SECOND)
        actuator = FlakyActuator(failures=0)
        daemon = make_daemon(sampler, actuator,
                             telemetry_failsafe_deadline_ns=3.0 * SECOND)
        for tick in range(5):
            daemon.step(tick * SECOND)
        assert not actuator.is_enabled()  # high load disabled prefetchers
        for tick in range(5, 12):
            daemon.step(tick * SECOND)
        assert daemon.failsafe_active
        assert actuator.is_enabled()  # failed safe back to enabled
        (incident,) = [i for i in daemon.report.incidents
                       if i.kind == "telemetry-blackout"]
        # Detected within one tick of the deadline expiring: last good
        # sample at t=4, deadline 3 s, detection at t=7.
        assert incident.onset_ns == 4.0 * SECOND
        assert incident.detected_ns == 7.0 * SECOND
        assert incident.detection_latency_ns == 3.0 * SECOND
        assert daemon.report.failsafe_engagements == 1

    def test_failsafe_releases_on_recovery(self):
        sampler = DarkSampler(utilization=0.9, dark_from=5.0 * SECOND,
                              dark_until=15.0 * SECOND)
        daemon = make_daemon(sampler, FlakyActuator(failures=0),
                             telemetry_failsafe_deadline_ns=3.0 * SECOND)
        for tick in range(20):
            daemon.step(tick * SECOND)
        assert not daemon.failsafe_active
        (incident,) = [i for i in daemon.report.incidents
                       if i.kind == "telemetry-blackout"]
        assert incident.resolved
        assert incident.recovered_ns == 15.0 * SECOND

    def test_failsafe_off_by_default(self):
        sampler = DarkSampler(utilization=0.9, dark_from=5.0 * SECOND)
        actuator = FlakyActuator(failures=0)
        daemon = make_daemon(sampler, actuator)
        for tick in range(60):
            daemon.step(tick * SECOND)
        assert not daemon.failsafe_active
        assert not actuator.is_enabled()  # legacy: hold last state forever

    def test_failsafe_counts_from_first_tick_without_any_sample(self):
        sampler = DarkSampler(dark_from=0.0)
        daemon = make_daemon(sampler, FlakyActuator(failures=0),
                             telemetry_failsafe_deadline_ns=2.0 * SECOND)
        daemon.step(10.0 * SECOND)
        daemon.step(11.0 * SECOND)
        assert not daemon.failsafe_active
        daemon.step(12.0 * SECOND)
        assert daemon.failsafe_active

    def test_deadline_validation(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(telemetry_failsafe_deadline_ns=0.0)
        with pytest.raises(ConfigError):
            LimoncelloConfig(telemetry_failsafe_deadline_ns=-1.0)


class TestRestart:
    def test_restart_resets_control_state_and_logs_incident(self):
        sampler = DarkSampler(utilization=0.9)
        actuator = FlakyActuator(failures=0)
        daemon = make_daemon(sampler, actuator)
        for tick in range(3):
            daemon.step(tick * SECOND)
        assert not actuator.is_enabled()
        actuator._enabled = True  # the reboot restored hardware defaults
        daemon.restart(3.0 * SECOND, restored_enabled=True)
        assert daemon.controller.prefetchers_enabled
        restarts = [i for i in daemon.report.incidents
                    if i.kind == "machine-restart"]
        assert len(restarts) == 1 and restarts[0].resolved

    def test_restart_closes_open_incidents(self):
        actuator = FlakyActuator(failures=100)
        daemon = make_daemon(DarkSampler(utilization=0.9), actuator,
                             retry_policy=RetryPolicy(max_attempts=2))
        daemon.step(0.0)
        daemon.step(1.0 * SECOND)
        assert daemon.report.open_incidents()
        daemon.restart(2.0 * SECOND)
        open_incidents = daemon.report.open_incidents()
        assert open_incidents == []

    def test_restart_clears_failsafe(self):
        daemon = make_daemon(DarkSampler(dark_from=0.0),
                             FlakyActuator(failures=0),
                             telemetry_failsafe_deadline_ns=1.0 * SECOND)
        daemon.step(0.0)
        daemon.step(1.0 * SECOND)
        assert daemon.failsafe_active
        daemon.restart(2.0 * SECOND)
        assert not daemon.failsafe_active


class TestReportEdges:
    def test_duty_cycle_disabled_zero_duration(self):
        """A report with no samples has duty cycle 0.0, not NaN."""
        report = DaemonReport()
        assert report.duty_cycle_disabled() == 0.0

    def test_duty_cycle_disabled_after_dropout_only_run(self):
        daemon = make_daemon(DarkSampler(dark_from=0.0),
                             FlakyActuator(failures=0))
        for tick in range(5):
            daemon.step(tick * SECOND)
        assert daemon.report.duty_cycle_disabled() == 0.0
        assert daemon.report.ticks == 5

    def test_availability_zero_duration(self):
        assert DaemonReport().availability() == 1.0

    def test_mttr_none_without_recovered_incidents(self):
        assert DaemonReport().mean_time_to_recovery_ns() is None

    def test_tick_accounting(self):
        daemon = make_daemon(
            DarkSampler(utilization=0.5, dark_from=3.0 * SECOND,
                        dark_until=6.0 * SECOND),
            FlakyActuator(failures=0))
        for tick in range(10):
            daemon.step(tick * SECOND)
        report = daemon.report
        assert report.ticks == 10
        assert report.samples == 7
        assert report.dropouts == 3
        assert report.availability() == 0.7
        assert report.enabled_ticks + report.disabled_ticks == 10


class TestScriptedIntegration:
    def test_hardened_config_matches_legacy_on_clean_telemetry(self):
        """With clean telemetry, the hardened knobs change nothing."""
        def run(config):
            source = ScriptedBandwidthSource(
                [(0.0, 90.0), (10 * SECOND, 40.0)],
                saturation_bandwidth=100.0)
            msrs = MSRFile()
            daemon = LimoncelloDaemon(
                PerfBandwidthSampler(source),
                MSRPrefetcherActuator(msrs, INTEL_LIKE_MAP), config)
            daemon.run(20 * SECOND)
            return (daemon.report.transitions,
                    daemon.report.duty_cycle_disabled())

        legacy = run(LimoncelloConfig(sustain_duration_ns=2.0 * SECOND))
        hardened = run(LimoncelloConfig(
            sustain_duration_ns=2.0 * SECOND,
            retry_policy=RetryPolicy.exponential(),
            telemetry_failsafe_deadline_ns=5.0 * SECOND))
        assert legacy == hardened
