"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.cli.commands import _parse_profile, _table
from repro.errors import ReproError
from repro.units import SECOND


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("daemon", "latency-curve", "ablation", "rollout",
                        "thresholds", "microbench", "calibrate"):
            assert command in out


class TestProfileParsing:
    def test_parse(self):
        points = _parse_profile("0:85,8:75")
        assert points == [(0.0, 85.0), (8 * SECOND, 75.0)]

    def test_empty_rejected(self):
        with pytest.raises((ReproError, ValueError)):
            _parse_profile("")


class TestTable:
    def test_alignment(self, capsys):
        _table(("a", "bb"), [("1", "2"), ("333", "4")])
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 4
        assert all(len(line) == len(out[0]) for line in out)


class TestCommands:
    def test_daemon_runs(self, capsys):
        assert main(["daemon", "--duration", "6", "--sustain", "1"]) == 0
        out = capsys.readouterr().out
        assert "transitions=" in out
        assert "prefetchers" in out

    def test_latency_curve_runs(self, capsys):
        assert main(["latency-curve", "--points", "3", "--hops", "60"]) == 0
        out = capsys.readouterr().out
        assert "HW on (ns)" in out
        assert "reduction at 90%" in out

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "--machines", "4", "--epochs", "10",
                     "--warmup", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet throughput" in out
        assert "memcpy" in out

    def test_thresholds_runs(self, capsys):
        assert main(["thresholds", "--machines", "4", "--epochs", "10",
                     "--warmup", "3"]) == 0
        out = capsys.readouterr().out
        assert "60/80" in out
        assert "best configuration" in out

    def test_microbench_runs(self, capsys):
        assert main(["microbench", "--distances", "256",
                     "--degrees", "256"]) == 0
        out = capsys.readouterr().out
        assert "mean speedup" in out

    def test_rollout_runs(self, capsys):
        assert main(["rollout", "--machines", "6", "--epochs", "12",
                     "--warmup", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 16" in out
        assert "Figure 20" in out

    def test_calibrate_runs(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "memcpy" in out
        assert "recovery" in out


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "# Limoncello reproduction report" in out
        assert "Figure 10" in out
        assert "tax cycle share" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--quick", "--out", str(target)]) == 0
        assert "Loaded latency" in target.read_text()
        assert "wrote" in capsys.readouterr().out
