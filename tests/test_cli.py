"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.cli.commands import _parse_profile, _table
from repro.errors import ReproError
from repro.units import SECOND


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("daemon", "latency-curve", "ablation", "rollout",
                        "thresholds", "microbench", "calibrate"):
            assert command in out


class TestProfileParsing:
    def test_parse(self):
        points = _parse_profile("0:85,8:75")
        assert points == [(0.0, 85.0), (8 * SECOND, 75.0)]

    def test_empty_rejected(self):
        with pytest.raises((ReproError, ValueError)):
            _parse_profile("")


class TestTable:
    def test_alignment(self, capsys):
        _table(("a", "bb"), [("1", "2"), ("333", "4")])
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 4
        assert all(len(line) == len(out[0]) for line in out)


class TestCommands:
    def test_daemon_runs(self, capsys):
        assert main(["daemon", "--duration", "6", "--sustain", "1"]) == 0
        out = capsys.readouterr().out
        assert "transitions=" in out
        assert "prefetchers" in out

    def test_latency_curve_runs(self, capsys):
        assert main(["latency-curve", "--points", "3", "--hops", "60"]) == 0
        out = capsys.readouterr().out
        assert "HW on (ns)" in out
        assert "reduction at 90%" in out

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "--machines", "4", "--epochs", "10",
                     "--warmup", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet throughput" in out
        assert "memcpy" in out

    def test_thresholds_runs(self, capsys):
        assert main(["thresholds", "--machines", "4", "--epochs", "10",
                     "--warmup", "3"]) == 0
        out = capsys.readouterr().out
        assert "60/80" in out
        assert "best configuration" in out

    def test_microbench_runs(self, capsys):
        assert main(["microbench", "--distances", "256",
                     "--degrees", "256"]) == 0
        out = capsys.readouterr().out
        assert "mean speedup" in out

    def test_rollout_runs(self, capsys):
        assert main(["rollout", "--machines", "6", "--epochs", "12",
                     "--warmup", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 16" in out
        assert "Figure 20" in out

    def test_calibrate_runs(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "memcpy" in out
        assert "recovery" in out


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "# Limoncello reproduction report" in out
        assert "Figure 10" in out
        assert "tax cycle share" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--quick", "--out", str(target)]) == 0
        assert "Loaded latency" in target.read_text()
        assert "wrote" in capsys.readouterr().out


class TestCheckpointCommands:
    SWEEP = ["sweep", "--machines", "9", "--shard-size", "3"]

    def test_sweep_reports_queue_disposition(self, tmp_path, capsys):
        assert main(self.SWEEP + ["--checkpoint-dir", str(tmp_path)]) == 0
        assert "0/3 shards restored, 3 computed" in capsys.readouterr().out
        assert main(self.SWEEP + ["--checkpoint-dir", str(tmp_path),
                                  "--resume"]) == 0
        assert "3/3 shards restored, 0 computed" in capsys.readouterr().out

    def test_resume_without_directory_fails_fast(self, monkeypatch):
        from repro.fleet.queue import CHECKPOINT_ENV_VAR
        monkeypatch.delenv(CHECKPOINT_ENV_VAR, raising=False)
        with pytest.raises(ReproError):
            main(self.SWEEP + ["--resume"])

    def test_queue_status_command(self, tmp_path, capsys):
        assert main(self.SWEEP + ["--checkpoint-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["queue", "--checkpoint-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "micro-sweep" in out
        assert "shard tasks" in out

    def test_queue_without_directory_fails_fast(self, monkeypatch):
        from repro.fleet.queue import CHECKPOINT_ENV_VAR
        monkeypatch.delenv(CHECKPOINT_ENV_VAR, raising=False)
        with pytest.raises(ReproError):
            main(["queue"])


class TestCacheCommand:
    def test_inspect_and_prune(self, tmp_path, capsys):
        assert main(["ablation", "--machines", "4", "--epochs", "10",
                     "--warmup", "3", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "stores" in out
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune", "0"]) == 0
        assert "pruned 1 entry" in capsys.readouterr().out

    def test_cache_without_directory_fails_fast(self, monkeypatch):
        from repro.fleet.result_cache import CACHE_ENV_VAR
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        with pytest.raises(ReproError):
            main(["cache"])


class TestAdaptiveCommand:
    def test_adaptive_ablation_prints_verdicts(self, capsys):
        assert main(["ablation", "--adaptive", "--machines", "12",
                     "--epochs", "10", "--warmup", "3",
                     "--shard-size", "4", "--margin", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "adaptive ablation over arms: off, control" in out
        assert "ranking:" in out
        assert "exhaustive" in out

    def test_adaptive_rejects_bad_arms(self):
        with pytest.raises(ReproError):
            main(["ablation", "--adaptive", "--arms", "off"])


class TestScenarioCommands:
    CALLGRAPH = ["scenario", "callgraph",
                 "--services", "edge:mixed:2:8>leaf*2;leaf:random:1:6",
                 "--requests", "6"]
    NOISY = ["scenario", "noisy", "--machines", "3", "--epochs", "4",
             "--tenants", "lat:stream:6,bat:random:10",
             "--sustain-ns", "20000"]

    def test_callgraph_reports_slo(self, capsys):
        assert main(self.CALLGRAPH + ["--compare-serial"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end SLO at 'edge'" in out
        assert "p99" in out
        assert "result digest:" in out
        assert "serial-equivalence check: OK" in out

    def test_noisy_reports_tenants_and_duty_cycle(self, capsys):
        assert main(self.NOISY + ["--baseline", "--compare-serial"]) == 0
        out = capsys.readouterr().out
        assert "lat" in out and "bat" in out
        assert "bw share" in out
        assert "prefetchers-disabled duty cycle:" in out
        assert "versus always-enabled twin" in out
        assert "serial-equivalence check: OK" in out

    def test_noisy_policy_mode(self, capsys):
        assert main(self.NOISY + ["--mode", "policy",
                                  "--policy", "hysteresis"]) == 0
        assert "mode=policy" in capsys.readouterr().out

    def test_noisy_policy_needs_policy_mode(self):
        with pytest.raises(ReproError):
            main(self.NOISY + ["--policy", "bandit"])
        with pytest.raises(ReproError):
            main(self.NOISY + ["--mode", "policy"])

    def test_callgraph_checkpoint_disposition(self, tmp_path, capsys):
        assert main(self.CALLGRAPH
                    + ["--checkpoint-dir", str(tmp_path)]) == 0
        assert "0/2 shards restored, 2 computed" in capsys.readouterr().out
        assert main(self.CALLGRAPH + ["--checkpoint-dir", str(tmp_path),
                                      "--resume"]) == 0
        assert "2/2 shards restored, 0 computed" in capsys.readouterr().out

    def test_sweep_scenario_trace(self, capsys):
        assert main(["sweep", "--machines", "2", "--scale", "0.25",
                     "--trace", "scenario", "--compare-serial"]) == 0
        assert "serial-equivalence check: OK" in capsys.readouterr().out
