"""Tests for FunctionStats / RunResult derived metrics."""

import pytest

from repro.memsys.stats import FunctionStats, RunResult


class TestFunctionStats:
    def test_cycles_is_compute_plus_stall(self):
        stats = FunctionStats(compute_cycles=100, stall_cycles=50.0)
        assert stats.cycles == 150.0

    def test_mpki(self):
        stats = FunctionStats(instructions=2000, llc_misses=10)
        assert stats.llc_mpki == pytest.approx(5.0)

    def test_mpki_zero_instructions(self):
        assert FunctionStats(llc_misses=5).llc_mpki == 0.0

    def test_average_load_to_use(self):
        stats = FunctionStats(llc_misses=4, dram_wait_ns=400.0)
        assert stats.average_load_to_use_ns == pytest.approx(100.0)

    def test_average_load_to_use_no_misses(self):
        assert FunctionStats(dram_wait_ns=10.0).average_load_to_use_ns == 0.0

    def test_memory_wait_combines_demand_and_late(self):
        stats = FunctionStats(dram_wait_ns=100.0,
                              late_prefetch_wait_ns=40.0)
        assert stats.memory_wait_ns == pytest.approx(140.0)

    def test_ipc(self):
        stats = FunctionStats(instructions=100, compute_cycles=100,
                              stall_cycles=100.0)
        assert stats.ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert FunctionStats(instructions=10).ipc == 0.0

    def test_accesses(self):
        stats = FunctionStats(loads=3, stores=2)
        assert stats.accesses == 5


class TestRunResult:
    def make(self, elapsed=1000.0, demand=10, prefetch=5, useful=4,
             wasted=1):
        result = RunResult()
        result.elapsed_ns = elapsed
        result.dram_demand_fills = demand
        result.dram_prefetch_fills = prefetch
        result.dram_demand_bytes = demand * 64
        result.dram_prefetch_bytes = prefetch * 64
        result.useful_prefetches = useful
        result.wasted_prefetches = wasted
        return result

    def test_totals(self):
        result = self.make()
        assert result.dram_total_fills == 15
        assert result.dram_total_bytes == 15 * 64

    def test_average_bandwidth(self):
        result = self.make(elapsed=960.0)
        assert result.average_bandwidth == pytest.approx(1.0)

    def test_average_bandwidth_zero_elapsed(self):
        assert self.make(elapsed=0.0).average_bandwidth == 0.0

    def test_prefetch_traffic_fraction(self):
        assert self.make().prefetch_traffic_fraction == pytest.approx(1 / 3)

    def test_prefetch_traffic_fraction_empty(self):
        assert RunResult().prefetch_traffic_fraction == 0.0

    def test_prefetch_accuracy(self):
        assert self.make().prefetch_accuracy == pytest.approx(0.8)

    def test_prefetch_accuracy_unresolved(self):
        assert self.make(useful=0, wasted=0).prefetch_accuracy == 0.0

    def test_speedup_over(self):
        fast = self.make(elapsed=500.0)
        slow = self.make(elapsed=1000.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_speedup_zero_elapsed(self):
        assert self.make(elapsed=0.0).speedup_over(self.make()) == 0.0

    def test_function_lookup_defaults_empty(self):
        assert RunResult().function("nope").instructions == 0
