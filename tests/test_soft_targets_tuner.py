"""Tests for target identification and the distance/degree tuner."""

import pytest

from repro.core import PrefetchDescriptor, PrefetchTuner, identify_targets
from repro.core.soft.targets import category_rollup, selected_functions
from repro.errors import ConfigError
from repro.memsys.stats import FunctionStats
from repro.workloads import FunctionCategory


def stats(instructions=10_000, compute=10_000, stall=5_000.0, misses=100):
    return FunctionStats(instructions=instructions, compute_cycles=compute,
                         stall_cycles=stall, llc_misses=misses)


class TestIdentifyTargets:
    def make_profiles(self):
        control = {
            "memcpy": stats(stall=5_000.0, misses=100),
            "pointer_chase": stats(stall=50_000.0, misses=1_000),
            "cold_fn": FunctionStats(instructions=10, compute_cycles=10,
                                     stall_cycles=5.0, llc_misses=1),
        }
        experiment = {
            "memcpy": stats(stall=25_000.0, misses=500),       # regressed
            "pointer_chase": stats(stall=45_000.0, misses=990),  # improved
            "cold_fn": FunctionStats(instructions=10, compute_cycles=10,
                                     stall_cycles=50.0, llc_misses=10),
        }
        return control, experiment

    def test_regressing_hot_function_selected(self):
        control, experiment = self.make_profiles()
        selections = identify_targets(control, experiment)
        by_name = {s.function: s for s in selections}
        assert by_name["memcpy"].selected
        assert by_name["memcpy"].cycle_delta > 0
        assert by_name["memcpy"].mpki_delta > 0

    def test_improving_function_not_selected(self):
        control, experiment = self.make_profiles()
        by_name = {s.function: s for s in identify_targets(control, experiment)}
        assert not by_name["pointer_chase"].selected
        assert by_name["pointer_chase"].reason == "no cycle regression"

    def test_cold_function_not_selected_even_if_regressing(self):
        control, experiment = self.make_profiles()
        by_name = {s.function: s for s in identify_targets(control, experiment)}
        assert not by_name["cold_fn"].selected
        assert by_name["cold_fn"].reason == "too cold"

    def test_sorted_by_regression(self):
        control, experiment = self.make_profiles()
        selections = identify_targets(control, experiment)
        deltas = [s.cycle_delta for s in selections]
        assert deltas == sorted(deltas, reverse=True)

    def test_selected_functions_helper(self):
        control, experiment = self.make_profiles()
        assert selected_functions(identify_targets(control, experiment)) \
            == ["memcpy"]

    def test_function_missing_from_experiment_skipped(self):
        control = {"memcpy": stats()}
        assert identify_targets(control, {}) == []

    def test_empty_control_rejected(self):
        with pytest.raises(ConfigError):
            identify_targets({}, {})

    def test_categories_attached(self):
        control, experiment = self.make_profiles()
        by_name = {s.function: s for s in identify_targets(control, experiment)}
        assert by_name["memcpy"].category is FunctionCategory.DATA_MOVEMENT
        assert by_name["memcpy"].is_tax
        assert by_name["pointer_chase"].category is FunctionCategory.NON_TAX

    def test_category_rollup(self):
        control, experiment = self.make_profiles()
        rollup = category_rollup(identify_targets(control, experiment))
        assert rollup[FunctionCategory.DATA_MOVEMENT] > 0
        assert rollup[FunctionCategory.NON_TAX] < 0.2


class TestTuner:
    @staticmethod
    def quadratic_bench(best_distance=512, best_degree=256):
        """A synthetic response surface peaking at (best_distance, best_degree)."""
        def bench(descriptor):
            d_penalty = abs(descriptor.distance_bytes - best_distance) / 1024
            g_penalty = abs(descriptor.degree_bytes - best_degree) / 1024
            return 0.5 - d_penalty - g_penalty
        return bench

    def test_finds_peak_of_grid(self):
        bench = self.quadratic_bench()
        tuner = PrefetchTuner(microbenchmark=bench, loadtest=bench)
        result = tuner.tune(PrefetchDescriptor("memcpy"),
                            distances=[64, 128, 256, 512, 1024],
                            degrees=[64, 128, 256, 512])
        assert result.succeeded
        assert result.chosen.distance_bytes == 512
        assert result.chosen.degree_bytes == 256
        assert len(result.sweep) == 20

    def test_loadtest_veto_falls_back_to_next_candidate(self):
        micro = self.quadratic_bench()

        def loadtest(descriptor):
            # The microbench winner (512/256) fails under load.
            if descriptor.distance_bytes == 512 and descriptor.degree_bytes == 256:
                return -0.1
            return micro(descriptor)

        tuner = PrefetchTuner(microbenchmark=micro, loadtest=loadtest)
        result = tuner.tune(PrefetchDescriptor("memcpy"),
                            distances=[256, 512], degrees=[128, 256])
        assert result.succeeded
        assert (result.chosen.distance_bytes, result.chosen.degree_bytes) \
            != (512, 256)
        assert len(result.rejected) == 1

    def test_all_negative_fails(self):
        tuner = PrefetchTuner(microbenchmark=lambda d: -0.2,
                              loadtest=lambda d: -0.2)
        result = tuner.tune(PrefetchDescriptor("memcpy"),
                            distances=[64], degrees=[64])
        assert not result.succeeded
        assert result.chosen is None

    def test_candidate_budget_respected(self):
        calls = []

        def loadtest(descriptor):
            calls.append(descriptor)
            return -1.0  # everything fails under load

        tuner = PrefetchTuner(microbenchmark=lambda d: 0.5,
                              loadtest=loadtest, max_candidates=3)
        result = tuner.tune(PrefetchDescriptor("memcpy"),
                            distances=[64, 128, 256, 512],
                            degrees=[64, 128])
        assert not result.succeeded
        assert len(calls) == 3

    def test_best_by_distance_projection(self):
        bench = self.quadratic_bench()
        tuner = PrefetchTuner(microbenchmark=bench, loadtest=bench)
        result = tuner.tune(PrefetchDescriptor("memcpy"),
                            distances=[128, 512], degrees=[64, 256])
        projection = result.best_by_distance()
        assert set(projection) == {128, 512}
        assert projection[512].speedup >= projection[128].speedup

    def test_empty_grid_rejected(self):
        tuner = PrefetchTuner(lambda d: 0, lambda d: 0)
        with pytest.raises(ConfigError):
            tuner.tune(PrefetchDescriptor("f"), distances=[], degrees=[64])

    def test_bad_max_candidates(self):
        with pytest.raises(ConfigError):
            PrefetchTuner(lambda d: 0, lambda d: 0, max_candidates=0)
