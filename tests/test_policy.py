"""The policy protocol: serialization, the daemon adapter, baselines.

The headline invariants: every policy round-trips byte-identically
through canonical JSON, and a fleet running :class:`HysteresisPolicy`
is numerically indistinguishable from the stock Hard Limoncello
deployment — the policy layer is a refactor seam, not a behavior
change.
"""

import json

import pytest

from repro.core.config import LimoncelloConfig
from repro.errors import ConfigError, TelemetryError
from repro.fleet import AblationStudy
from repro.policy import (DEFAULT_PREFETCHERS, FEATURE_NAMES,
                          EpsilonGreedyBanditPolicy, FeatureExtractor,
                          HysteresisPolicy, PolicyController, PolicyMetrics,
                          SingleThresholdPolicy, policy_digest,
                          policy_from_dict, policy_from_spec)
from repro.serialization import (ablation_result_from_dict,
                                 ablation_result_to_dict, canonical_json)
from repro.units import SECOND


def _features(util):
    base = {name: 0.0 for name in FEATURE_NAMES}
    base["utilization"] = util
    base["util_mean"] = util
    return base


class TestSerialization:
    @pytest.mark.parametrize("policy", [
        HysteresisPolicy(),
        HysteresisPolicy(LimoncelloConfig.from_percent(50, 90)),
        SingleThresholdPolicy(threshold=0.7),
        EpsilonGreedyBanditPolicy(seed=5, epsilon=0.2, buckets=4),
    ])
    def test_round_trip_byte_identical(self, policy):
        payload = policy.to_dict()
        clone = policy_from_dict(payload)
        assert canonical_json(clone.to_dict()) == canonical_json(payload)
        assert policy_digest(clone) == policy_digest(policy)

    def test_from_spec_accepts_policy_dict_and_json(self):
        policy = SingleThresholdPolicy(threshold=0.65)
        for spec in (policy, policy.to_dict(),
                     canonical_json(policy.to_dict())):
            rebuilt = policy_from_spec(spec)
            assert rebuilt is not policy
            assert rebuilt.to_dict() == policy.to_dict()

    def test_from_spec_clones(self):
        """Shared specs must never share mutable state across sockets."""
        policy = EpsilonGreedyBanditPolicy(seed=1)
        clone = policy_from_spec(policy)
        clone.bind("m0/0")
        clone.decide(0.0, _features(0.5))
        assert policy.to_dict() == clone.to_dict()  # config-only form

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy kind"):
            policy_from_dict({"schema": 1, "kind": "nope"})

    def test_schema_mismatch_rejected(self):
        payload = SingleThresholdPolicy().to_dict()
        payload["schema"] = 99
        with pytest.raises(ConfigError, match="schema"):
            policy_from_dict(payload)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError):
            SingleThresholdPolicy(threshold=0.0)
        with pytest.raises(ConfigError):
            SingleThresholdPolicy(threshold=1.5)


class TestFeatureExtractor:
    def test_feature_vector_complete(self):
        extractor = FeatureExtractor(span_ns=3 * SECOND)
        features = extractor.observe(0.0, 0.5)
        assert set(features) == set(FEATURE_NAMES)

    def test_slope_and_mean(self):
        extractor = FeatureExtractor(span_ns=10 * SECOND)
        extractor.observe(0.0, 0.2)
        extractor.observe(1 * SECOND, 0.4)
        features = extractor.observe(2 * SECOND, 0.6)
        assert features["util_mean"] == pytest.approx(0.4)
        assert features["util_slope"] == pytest.approx(0.2)

    def test_duty_cycle_counts_disabled_states(self):
        extractor = FeatureExtractor(span_ns=SECOND)
        for enabled in (True, False, False, True):
            extractor.note_state(enabled)
        assert extractor.duty_cycle() == pytest.approx(0.5)


class TestPolicyController:
    def test_single_threshold_flips_immediately(self):
        controller = PolicyController(SingleThresholdPolicy(threshold=0.8))
        assert controller.observe(0.0, 0.5).prefetchers_enabled
        decision = controller.observe(1 * SECOND, 0.9)
        assert not decision.prefetchers_enabled
        assert decision.changed
        assert controller.observe(2 * SECOND, 0.5).prefetchers_enabled

    def test_time_moving_backwards_rejected(self):
        controller = PolicyController(SingleThresholdPolicy())
        controller.observe(2 * SECOND, 0.5)
        with pytest.raises(TelemetryError):
            controller.observe(1 * SECOND, 0.5)

    def test_metrics_accumulate(self):
        config = LimoncelloConfig()
        controller = PolicyController(
            SingleThresholdPolicy(threshold=config.upper_threshold),
            config=config)
        controller.observe(0.0, 0.9)          # out of band, disabled: OK
        controller.observe(1 * SECOND, 0.3)   # out of band, enabled: OK
        metrics = controller.policy_metrics
        assert metrics.samples == 2
        assert metrics.disabled_samples == 1
        assert metrics.band_samples == 2
        assert metrics.band_mismatches == 0
        assert metrics.duty_cycle_error() == 0.0
        for name in DEFAULT_PREFETCHERS:
            assert metrics.prefetcher_disabled[name] == 1

    def test_reset_restores_boot_state_keeps_metrics(self):
        controller = PolicyController(SingleThresholdPolicy(threshold=0.5))
        controller.observe(0.0, 0.9)
        assert not controller.prefetchers_enabled
        controller.reset()
        assert controller.prefetchers_enabled
        assert all(controller.prefetcher_decisions.values())
        assert controller.policy_metrics.samples == 1
        # time may restart from zero after a machine restart
        controller.observe(0.0, 0.2)


class TestMetricsMerge:
    def test_merge_is_additive(self):
        left = PolicyMetrics(samples=4, disabled_samples=1,
                             band_mismatches=1, band_samples=3,
                             transitions=2, learn_updates=5, explorations=1,
                             prefetcher_disabled={"l1_stride": 1})
        right = PolicyMetrics(samples=6, disabled_samples=2,
                              band_mismatches=0, band_samples=5,
                              transitions=1, learn_updates=3, explorations=2,
                              prefetcher_disabled={"l1_stride": 2,
                                                   "l2_stream": 1})
        left.merge(right)
        assert left.samples == 10
        assert left.band_samples == 8
        assert left.duty_cycle_error() == pytest.approx(1 / 8)
        assert left.prefetcher_disabled == {"l1_stride": 3, "l2_stream": 1}


class TestHysteresisEquivalence:
    def test_policy_fleet_matches_stock_hard_deployment(self):
        """HysteresisPolicy is the stock controller behind the adapter:
        same config, same fleet, same numbers."""
        config = LimoncelloConfig(sample_period_ns=10 * SECOND,
                                  sustain_duration_ns=30 * SECOND)
        stock = AblationStudy(mode="hard", machines=6, epochs=12,
                              warmup_epochs=3, seed=7, config=config).run()
        via_policy = AblationStudy(
            mode="hard", machines=6, epochs=12, warmup_epochs=3, seed=7,
            config=config, policy=HysteresisPolicy(config)).run()
        assert via_policy.throughput_change() == stock.throughput_change()
        assert via_policy.bandwidth_reduction() == stock.bandwidth_reduction()
        assert via_policy.latency_reduction() == stock.latency_reduction()


class TestResultSerialization:
    def test_policy_metrics_round_trip(self):
        study = AblationStudy(mode="hard", machines=4, epochs=8,
                              warmup_epochs=2, seed=3,
                              policy=SingleThresholdPolicy(threshold=0.7))
        result = study.run()
        assert result.policy_metrics is not None
        assert result.policy_metrics.samples > 0
        payload = ablation_result_to_dict(result)
        text = canonical_json(payload)
        rebuilt = ablation_result_from_dict(json.loads(text))
        assert canonical_json(ablation_result_to_dict(rebuilt)) == text
        assert rebuilt.policy_metrics.samples == result.policy_metrics.samples

    def test_policy_free_payload_has_no_policy_metrics(self):
        result = AblationStudy(mode="off", machines=4, epochs=6,
                               warmup_epochs=2, seed=3).run()
        payload = ablation_result_to_dict(result)
        assert "policy_metrics" not in payload


class TestStudyValidation:
    def test_policy_requires_daemon_mode(self):
        with pytest.raises(ConfigError, match="daemon-running mode"):
            AblationStudy(mode="off", policy=SingleThresholdPolicy())

    def test_cache_key_unchanged_without_policy(self):
        """Pre-existing cache entries must keep resolving: the policy
        field enters key material only when set."""
        material = AblationStudy(mode="hard", machines=8, epochs=10,
                                 seed=3).cache_key_material()
        assert "policy" not in material
        with_policy = AblationStudy(
            mode="hard", machines=8, epochs=10, seed=3,
            policy=SingleThresholdPolicy()).cache_key_material()
        assert with_policy["policy"]["kind"] == "single-threshold"
