"""Tests for the Fleet simulator and FleetMetrics."""

import pytest

from repro.errors import ConfigError
from repro.fleet import Fleet, FleetMetrics
from repro.fleet.cluster import task_mean_cores
from repro.fleet.traffic import DiurnalTraffic


def small_fleet(**kwargs):
    params = dict(machines=6, seed=4)
    params.update(kwargs)
    return Fleet(**params)


class TestFleetRun:
    def test_run_accumulates_metrics(self):
        fleet = small_fleet()
        metrics = fleet.run(10)
        assert metrics.epochs == 10
        assert len(metrics.socket_bandwidth) == 6 * 2 * 10
        assert len(metrics.machine_points) == 6 * 10
        assert metrics.total_qps > 0

    def test_deterministic_given_seed(self):
        a = small_fleet().run(10)
        b = small_fleet().run(10)
        assert a.socket_bandwidth == b.socket_bandwidth
        assert a.total_qps == b.total_qps

    def test_different_seeds_differ(self):
        a = small_fleet(seed=4).run(10)
        b = small_fleet(seed=5).run(10)
        assert a.socket_bandwidth != b.socket_bandwidth

    def test_load_tracks_traffic(self):
        low = small_fleet(traffic=DiurnalTraffic(mean=0.3, amplitude=0.0,
                                                 noise=0.0))
        high = small_fleet(traffic=DiurnalTraffic(mean=0.8, amplitude=0.0,
                                                  noise=0.0))
        low_metrics = low.run(20)
        high_metrics = high.run(20)
        assert (high_metrics.cpu_utilization_mean()
                > low_metrics.cpu_utilization_mean())

    def test_observers_called_each_epoch(self):
        calls = []
        fleet = small_fleet()
        fleet.run(5, observers=[lambda now, machines, rng:
                                calls.append(now)])
        assert len(calls) == 5

    def test_force_prefetchers_off_reduces_bandwidth(self):
        on = small_fleet().run(15)
        off_fleet = small_fleet()
        off_fleet.force_prefetchers(False)
        off = off_fleet.run(15)
        assert (off.bandwidth_summary().mean
                < on.bandwidth_summary().mean)

    def test_deploy_hard_limoncello_creates_daemons(self):
        fleet = small_fleet()
        fleet.deploy_hard_limoncello()
        assert all(len(machine.daemons) == 2 for machine in fleet.machines)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Fleet(machines=0)
        with pytest.raises(ConfigError):
            Fleet(machines=1, epoch_ns=0)
        with pytest.raises(ConfigError):
            small_fleet().run(0)


class TestFleetMetricsViews:
    def test_throughput_by_cpu_band(self):
        metrics = FleetMetrics()
        metrics.machine_points = [
            (0.60, 0.8, 90.0, 100.0),
            (0.70, 0.8, 80.0, 100.0),
        ]
        bands = metrics.throughput_by_cpu_band(((0.55, 0.65), (0.65, 0.75)))
        assert bands["60%"] == pytest.approx(0.9)
        assert bands["70%"] == pytest.approx(0.8)

    def test_empty_band_is_zero(self):
        metrics = FleetMetrics()
        bands = metrics.throughput_by_cpu_band(((0.9, 1.0),))
        assert bands["95%"] == 0.0

    def test_bandwidth_by_cpu_bucket(self):
        metrics = FleetMetrics()
        metrics.machine_points = [
            (0.45, 0.5, 0, 0), (0.45, 0.7, 0, 0), (0.85, 0.9, 0, 0)]
        buckets = metrics.bandwidth_by_cpu_bucket()
        assert buckets["40-50"] == pytest.approx(0.6)
        assert buckets["80-90"] == pytest.approx(0.9)

    def test_saturated_fraction(self):
        metrics = FleetMetrics()
        metrics.socket_utilization = [0.5, 0.96, 0.99, 0.7]
        assert metrics.saturated_socket_fraction() == pytest.approx(0.5)

    def test_saturated_fraction_empty(self):
        assert FleetMetrics().saturated_socket_fraction() == 0.0

    def test_normalized_throughput(self):
        metrics = FleetMetrics()
        metrics.total_qps = 80.0
        metrics.ideal_qps = 100.0
        assert metrics.normalized_throughput == pytest.approx(0.8)

    def test_task_mean_cores_default(self):
        assert task_mean_cores(None) == 5.0
