"""Tests for the fleetwide profiler and profile data."""

import random

import pytest

from repro.errors import ConfigError
from repro.fleet import Fleet, PLATFORM_1, Machine, Task
from repro.profiling import FleetProfiler, ProfileData
from repro.workloads import FunctionCategory


class TestProfileData:
    def test_record_and_read(self):
        data = ProfileData()
        data.record("memcpy", instructions=1000, cycles=1500, llc_misses=20)
        stats = data.function("memcpy")
        assert stats.instructions == 1000
        assert stats.cycles == pytest.approx(1500)
        assert stats.llc_misses == 20
        assert stats.llc_mpki == pytest.approx(20.0)

    def test_accumulation(self):
        data = ProfileData()
        data.record("f", 100, 150, 1)
        data.record("f", 100, 150, 1)
        assert data.function("f").instructions == 200

    def test_missing_function_empty(self):
        assert ProfileData().function("nope").instructions == 0

    def test_merge(self):
        a, b = ProfileData(), ProfileData()
        a.record("f", 100, 150, 1)
        b.record("f", 100, 150, 1)
        b.record("g", 50, 60, 0)
        b.samples = 3
        a.merge(b)
        assert a.function("f").instructions == 200
        assert "g" in a
        assert a.samples == 3

    def test_cycle_share(self):
        data = ProfileData()
        data.record("a", 100, 300, 0)
        data.record("b", 100, 100, 0)
        assert data.cycle_share("a") == pytest.approx(0.75)

    def test_category_cycle_shares(self):
        data = ProfileData()
        data.record("memcpy", 100, 300, 0)
        data.record("pointer_chase", 100, 100, 0)
        shares = data.category_cycle_shares()
        assert shares[FunctionCategory.DATA_MOVEMENT] == pytest.approx(0.75)
        assert shares[FunctionCategory.NON_TAX] == pytest.approx(0.25)

    def test_iteration_sorted(self):
        data = ProfileData()
        data.record("z", 1, 1, 0)
        data.record("a", 1, 1, 0)
        assert [name for name, _ in data] == ["a", "z"]


class TestFleetProfiler:
    def loaded_machine(self, hw_on=True, soft=False):
        machine = Machine("m", PLATFORM_1, sockets=1, demand_noise_sigma=0.0)
        socket = machine.sockets[0]
        socket.add_task(Task(
            name="t", cores=8.0, base_qps=800.0, bandwidth_demand=30.0,
            memory_boundedness=0.4,
            function_shares={"memcpy": 0.4, "pointer_chase": 0.6},
            noise_sigma=0.0))
        socket.force_prefetchers(hw_on)
        socket.soft_deployed = soft
        machine.step(0.0)
        return machine

    def test_sample_attributes_all_functions(self):
        profiler = FleetProfiler(sample_rate=1.0)
        profiler.sample_machine(self.loaded_machine())
        assert "memcpy" in profiler.data
        assert "pointer_chase" in profiler.data

    def test_unstepped_machine_ignored(self):
        profiler = FleetProfiler(sample_rate=1.0)
        profiler.sample_machine(Machine("m", PLATFORM_1))
        assert len(profiler.data) == 0

    def test_ablation_shifts_cycle_share_toward_tax(self):
        """With prefetchers off, memcpy burns a larger share of cycles —
        the effect behind Figures 11/12/20."""
        on_profiler = FleetProfiler(sample_rate=1.0)
        on_profiler.sample_machine(self.loaded_machine(hw_on=True))
        off_profiler = FleetProfiler(sample_rate=1.0)
        off_profiler.sample_machine(self.loaded_machine(hw_on=False))
        assert (off_profiler.data.cycle_share("memcpy")
                > on_profiler.data.cycle_share("memcpy"))

    def test_soft_limoncello_restores_share(self):
        off = FleetProfiler(sample_rate=1.0)
        off.sample_machine(self.loaded_machine(hw_on=False))
        soft = FleetProfiler(sample_rate=1.0)
        soft.sample_machine(self.loaded_machine(hw_on=False, soft=True))
        on = FleetProfiler(sample_rate=1.0)
        on.sample_machine(self.loaded_machine(hw_on=True))
        assert (on.data.cycle_share("memcpy")
                <= soft.data.cycle_share("memcpy")
                < off.data.cycle_share("memcpy"))

    def test_mpki_reflects_prefetcher_state(self):
        on = FleetProfiler(sample_rate=1.0)
        on.sample_machine(self.loaded_machine(hw_on=True))
        off = FleetProfiler(sample_rate=1.0)
        off.sample_machine(self.loaded_machine(hw_on=False))
        assert (off.data.function("memcpy").llc_mpki
                > 5 * on.data.function("memcpy").llc_mpki)

    def test_observer_hook_samples_probabilistically(self):
        fleet = Fleet(machines=8, seed=2)
        profiler = FleetProfiler(sample_rate=0.5, rng=random.Random(1))
        fleet.run(10, observers=[profiler])
        assert 0 < profiler.data.samples < 80

    def test_bad_sample_rate(self):
        with pytest.raises(ConfigError):
            FleetProfiler(sample_rate=0.0)
