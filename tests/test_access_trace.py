"""Tests for repro.access.trace."""

import pytest

from repro.access import AccessKind, MemoryAccess, Trace, interleave
from repro.access.trace import software_prefetch
from repro.errors import TraceError


def loads(*addresses, **kwargs):
    return [MemoryAccess(address=a, **kwargs) for a in addresses]


class TestBasics:
    def test_len_and_iter(self):
        trace = Trace(loads(0, 64, 128))
        assert len(trace) == 3
        assert [r.address for r in trace] == [0, 64, 128]

    def test_indexing_and_slicing(self):
        trace = Trace(loads(0, 64, 128))
        assert trace[1].address == 64
        sliced = trace[1:]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 2

    def test_concatenation(self):
        combined = Trace(loads(0)) + Trace(loads(64))
        assert [r.address for r in combined] == [0, 64]

    def test_equality(self):
        assert Trace(loads(0)) == Trace(loads(0))
        assert Trace(loads(0)) != Trace(loads(64))

    def test_rejects_non_access(self):
        with pytest.raises(TraceError):
            Trace([1, 2, 3])


class TestTransforms:
    def test_attributed(self):
        trace = Trace(loads(0, 64)).attributed("hash")
        assert all(r.function == "hash" for r in trace)

    def test_shifted(self):
        trace = Trace(loads(0, 64)).shifted(0x1000)
        assert [r.address for r in trace] == [0x1000, 0x1040]

    def test_repeated(self):
        trace = Trace(loads(0)).repeated(3)
        assert len(trace) == 3

    def test_repeated_zero(self):
        assert len(Trace(loads(0)).repeated(0)) == 0

    def test_demand_only_strips_prefetches(self):
        trace = Trace(loads(0) + [software_prefetch(64)])
        assert trace.demand_only() == Trace(loads(0))


class TestStats:
    def test_counts(self):
        trace = Trace(loads(0, 64) + [software_prefetch(128)])
        assert trace.demand_count == 2
        assert trace.prefetch_count == 1

    def test_compute_cycles(self):
        trace = Trace(loads(0, 64, gap_cycles=5))
        assert trace.compute_cycles == 10

    def test_instruction_count(self):
        trace = Trace(loads(0, 64, gap_cycles=5))
        assert trace.instruction_count == 2 + 10

    def test_unique_lines(self):
        trace = Trace(loads(0, 8, 64))
        assert trace.unique_lines() == 2

    def test_footprint(self):
        trace = Trace(loads(0, 1024))
        assert trace.footprint_bytes() == 1024 + 8

    def test_footprint_empty(self):
        assert Trace().footprint_bytes() == 0

    def test_functions_in_first_seen_order(self):
        trace = Trace([
            MemoryAccess(address=0, function="b"),
            MemoryAccess(address=64, function="a"),
            MemoryAccess(address=128, function="b"),
        ])
        assert list(trace.functions()) == ["b", "a"]


class TestInterleave:
    def test_round_robin(self):
        t1 = Trace(loads(0, 64, 128, 192))
        t2 = Trace(loads(1000, 1064, 1128, 1192))
        merged = interleave([t1, t2], chunk=2)
        addresses = [r.address for r in merged]
        assert addresses == [0, 64, 1000, 1064, 128, 192, 1128, 1192]

    def test_uneven_lengths(self):
        t1 = Trace(loads(0, 64, 128))
        t2 = Trace(loads(1000))
        merged = interleave([t1, t2], chunk=2)
        assert len(merged) == 4

    def test_limit(self):
        t1 = Trace(loads(*range(0, 640, 64)))
        merged = interleave([t1], chunk=4, limit=3)
        assert len(merged) == 3

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            interleave([Trace()], chunk=0)


class TestSoftwarePrefetchHelper:
    def test_kind(self):
        record = software_prefetch(0x1000, size=128, pc=9, function="memcpy")
        assert record.kind is AccessKind.SOFTWARE_PREFETCH
        assert record.size == 128
        assert record.pc == 9
        assert record.function == "memcpy"
