"""Tests for LimoncelloConfig."""

import pytest

from repro.core import LimoncelloConfig
from repro.errors import ConfigError
from repro.units import SECOND


class TestConfig:
    def test_defaults_match_deployed_config(self):
        """Section 5: thresholds at 60% / 80% of saturation, 1s sampling."""
        config = LimoncelloConfig()
        assert config.lower_threshold == pytest.approx(0.60)
        assert config.upper_threshold == pytest.approx(0.80)
        assert config.sample_period_ns == 1.0 * SECOND

    def test_from_percent(self):
        config = LimoncelloConfig.from_percent(50, 70)
        assert config.lower_threshold == pytest.approx(0.5)
        assert config.upper_threshold == pytest.approx(0.7)

    def test_label(self):
        assert LimoncelloConfig.from_percent(60, 80).label == "60/80"

    def test_lower_must_be_below_upper(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(lower_threshold=0.8, upper_threshold=0.6)
        with pytest.raises(ConfigError):
            LimoncelloConfig(lower_threshold=0.8, upper_threshold=0.8)

    def test_upper_cannot_exceed_saturation(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(lower_threshold=0.9, upper_threshold=1.1)

    def test_lower_must_be_positive(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(lower_threshold=0.0, upper_threshold=0.8)

    def test_negative_sustain_rejected(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(sustain_duration_ns=-1.0)

    def test_zero_sustain_allowed(self):
        assert LimoncelloConfig(sustain_duration_ns=0.0)

    def test_bad_sample_period(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(sample_period_ns=0.0)

    def test_bad_retries(self):
        with pytest.raises(ConfigError):
            LimoncelloConfig(actuation_retries=0)
