"""Tests for the hardware prefetcher models."""

import pytest

from repro.errors import ConfigError
from repro.memsys.prefetchers import (
    AdjacentLinePrefetcher,
    NextLinePrefetcher,
    PrefetcherBank,
    StreamPrefetcher,
    StridePrefetcher,
    default_prefetcher_bank,
)
from repro.msr import INTEL_LIKE_MAP, MSRFile

LINE = 64


class TestNextLine:
    def test_prefetches_following_lines_on_miss(self):
        prefetcher = NextLinePrefetcher(degree=2, page_filter_entries=None)
        assert prefetcher.observe(0x1000, pc=0, was_hit=False) == [0x1040, 0x1080]

    def test_quiet_on_hit_when_miss_only(self):
        prefetcher = NextLinePrefetcher(degree=1, on_miss_only=True,
                                        page_filter_entries=None)
        assert prefetcher.observe(0x1000, pc=0, was_hit=True) == []

    def test_fires_on_hit_when_not_miss_only(self):
        prefetcher = NextLinePrefetcher(degree=1, on_miss_only=False,
                                        page_filter_entries=None)
        assert prefetcher.observe(0x1000, pc=0, was_hit=True) == [0x1040]

    def test_disabled_is_silent(self):
        prefetcher = NextLinePrefetcher(page_filter_entries=None)
        prefetcher.enabled = False
        assert prefetcher.observe(0x1000, pc=0, was_hit=False) == []
        assert prefetcher.issued == 0

    def test_issued_counter(self):
        prefetcher = NextLinePrefetcher(degree=3, page_filter_entries=None)
        prefetcher.observe(0x1000, pc=0, was_hit=False)
        assert prefetcher.issued == 3

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)

    def test_page_filter_silences_first_touch(self):
        prefetcher = NextLinePrefetcher(degree=1)
        assert prefetcher.observe(0x1000, 0, False) == []       # cold page
        assert prefetcher.observe(0x1040, 0, False) == [0x1080]  # warm page

    def test_page_filter_stays_quiet_on_random_pages(self):
        prefetcher = NextLinePrefetcher(degree=1, page_filter_entries=16)
        issued = []
        for i in range(100):
            issued.extend(prefetcher.observe((i * 7919) << 12, 0, False))
        assert issued == []

    def test_reset_clears_page_filter(self):
        prefetcher = NextLinePrefetcher(degree=1)
        prefetcher.observe(0x1000, 0, False)
        prefetcher.reset()
        assert prefetcher.observe(0x1040, 0, False) == []


class TestAdjacentLine:
    def test_buddy_pairing(self):
        prefetcher = AdjacentLinePrefetcher(page_filter_entries=None)
        assert prefetcher.observe(0x1000, 0, False) == [0x1040]
        assert prefetcher.observe(0x1040, 0, False) == [0x1000]

    def test_quiet_on_hit(self):
        assert AdjacentLinePrefetcher(
            page_filter_entries=None).observe(0x1000, 0, True) == []

    def test_page_filter_silences_first_touch(self):
        prefetcher = AdjacentLinePrefetcher()
        assert prefetcher.observe(0x1000, 0, False) == []
        assert prefetcher.observe(0x1080, 0, False) == [0x10C0]


class TestStride:
    def test_trains_after_threshold(self):
        prefetcher = StridePrefetcher(confidence_threshold=2, distance=1, degree=1)
        pc = 42
        assert prefetcher.observe(0x1000, pc, False) == []   # allocate
        assert prefetcher.observe(0x1100, pc, False) == []   # stride=0x100, conf=1
        out = prefetcher.observe(0x1200, pc, False)          # conf=2 -> fires
        assert out == [0x1300]

    def test_stride_change_resets_confidence(self):
        prefetcher = StridePrefetcher(confidence_threshold=3, distance=1, degree=1)
        pc = 1
        prefetcher.observe(0x1000, pc, False)
        prefetcher.observe(0x1100, pc, False)
        prefetcher.observe(0x1200, pc, False)
        assert prefetcher.observe(0x1240, pc, False) == []   # broke the stride
        assert prefetcher.observe(0x1280, pc, False) == []   # conf=2 < 3
        assert prefetcher.observe(0x12C0, pc, False) != []   # conf=3 -> fires

    def test_separate_pcs_train_independently(self):
        prefetcher = StridePrefetcher(confidence_threshold=2, distance=1, degree=1)
        for i in range(4):
            prefetcher.observe(0x1000 + i * 0x40, pc=1, was_hit=False)
            prefetcher.observe(0x8000 + i * 0x80, pc=2, was_hit=False)
        assert prefetcher.tracked_pcs == 2
        out = prefetcher.observe(0x1000 + 4 * 0x40, pc=1, was_hit=False)
        assert out and out[0] == 0x1000 + 5 * 0x40

    def test_table_capacity_evicts_oldest(self):
        prefetcher = StridePrefetcher(table_size=2)
        prefetcher.observe(0x0, pc=1, was_hit=False)
        prefetcher.observe(0x0, pc=2, was_hit=False)
        prefetcher.observe(0x0, pc=3, was_hit=False)
        assert prefetcher.tracked_pcs == 2

    def test_zero_stride_ignored(self):
        prefetcher = StridePrefetcher(confidence_threshold=1)
        prefetcher.observe(0x1000, 1, False)
        assert prefetcher.observe(0x1000, 1, False) == []

    def test_degree_multiple_lines(self):
        prefetcher = StridePrefetcher(confidence_threshold=1, distance=2, degree=2)
        pc = 9
        prefetcher.observe(0x1000, pc, False)
        prefetcher.observe(0x1040, pc, False)  # conf=1 -> fires
        out = prefetcher.observe(0x1080, pc, False)
        assert out == [0x1080 + 2 * 0x40, 0x1080 + 3 * 0x40]

    def test_reset(self):
        prefetcher = StridePrefetcher()
        prefetcher.observe(0x1000, 1, False)
        prefetcher.reset()
        assert prefetcher.tracked_pcs == 0


class TestStream:
    def make(self, **kwargs):
        defaults = dict(train_threshold=3, distance=4, degree=2)
        defaults.update(kwargs)
        return StreamPrefetcher(**defaults)

    def feed_sequential(self, prefetcher, start, count):
        issued = []
        for i in range(count):
            issued.extend(prefetcher.observe(start + i * LINE, 0, False))
        return issued

    def test_warm_up_before_issuing(self):
        prefetcher = self.make()
        assert self.feed_sequential(prefetcher, 0x10000, 2) == []

    def test_streams_ahead_after_training(self):
        prefetcher = self.make()
        issued = self.feed_sequential(prefetcher, 0x10000, 8)
        assert issued, "trained stream should prefetch"
        # Everything issued is ahead of the demand stream.
        assert min(issued) > 0x10000 + LINE

    def test_no_duplicate_issues(self):
        prefetcher = self.make()
        issued = self.feed_sequential(prefetcher, 0x10000, 20)
        assert len(issued) == len(set(issued))

    def test_stays_within_page(self):
        prefetcher = self.make(distance=64)
        issued = self.feed_sequential(prefetcher, 0x10000, 64)
        assert all(0x10000 <= line < 0x11000 for line in issued)

    def test_descending_stream(self):
        prefetcher = self.make()
        issued = []
        for i in range(8):
            issued.extend(prefetcher.observe(0x10F00 - i * LINE, 0, False))
        assert issued
        assert max(issued) < 0x10F00

    def test_direction_flip_retrains(self):
        prefetcher = self.make()
        self.feed_sequential(prefetcher, 0x10000, 5)
        assert prefetcher.observe(0x10000, 0, False) == []  # big backwards jump

    def test_random_page_hops_never_train(self):
        prefetcher = self.make()
        issued = []
        for i in range(50):
            issued.extend(prefetcher.observe((i * 7919 % 97) << 12, 0, False))
        assert issued == []

    def test_degree_caps_per_observation(self):
        prefetcher = self.make(distance=16, degree=2)
        for i in range(3):
            prefetcher.observe(0x10000 + i * LINE, 0, False)
        out = prefetcher.observe(0x10000 + 3 * LINE, 0, False)
        assert len(out) <= 2

    def test_overshoot_bounded_by_distance(self):
        """A stream of N lines fetches at most ~N + distance lines — the
        stream-end overshoot the paper identifies as wasted traffic."""
        prefetcher = self.make(distance=8, degree=4)
        issued = self.feed_sequential(prefetcher, 0x10000, 16)
        beyond = [line for line in issued if line >= 0x10000 + 16 * LINE]
        assert len(beyond) <= 8

    def test_table_eviction(self):
        prefetcher = self.make(table_size=2)
        prefetcher.observe(0x1000, 0, False)
        prefetcher.observe(0x2000, 0, False)
        prefetcher.observe(0x3000, 0, False)
        assert prefetcher.tracked_streams == 2


class TestBank:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            PrefetcherBank([NextLinePrefetcher(name="a"),
                            NextLinePrefetcher(name="a")])

    def test_observe_aggregates(self):
        bank = PrefetcherBank([
            NextLinePrefetcher(name="n1", degree=1, page_filter_entries=None),
            NextLinePrefetcher(name="n2", degree=2, page_filter_entries=None),
        ])
        out = bank.observe(0x1000, 0, False)
        assert len(out) == 3

    def test_set_all(self):
        bank = default_prefetcher_bank()
        bank.set_all(False)
        assert not bank.any_enabled
        assert bank.observe(0x1000, 0, False) == []
        bank.set_all(True)
        assert bank.any_enabled

    def test_getitem(self):
        bank = default_prefetcher_bank()
        assert bank["l2_stream"].name == "l2_stream"
        with pytest.raises(ConfigError):
            bank["nope"]

    def test_default_bank_matches_intel_map(self):
        bank = default_prefetcher_bank()
        control_names = {c.name for c in INTEL_LIKE_MAP.controls}
        assert set(bank.names()) == control_names

    def test_msr_binding_drives_enables(self):
        bank = default_prefetcher_bank()
        msrs = MSRFile()
        bank.bind_msr(msrs, INTEL_LIKE_MAP)
        assert bank.any_enabled
        INTEL_LIKE_MAP.disable_all(msrs)
        assert not bank.any_enabled
        INTEL_LIKE_MAP.enable_one(msrs, "l2_stream")
        assert bank["l2_stream"].enabled
        assert not bank["l1_stride"].enabled

    def test_msr_binding_requires_full_coverage(self):
        bank = PrefetcherBank([NextLinePrefetcher(name="exotic")])
        with pytest.raises(ConfigError):
            bank.bind_msr(MSRFile(), INTEL_LIKE_MAP)


class TestEnabledSnapshot:
    """The bank's cached enabled-prefetcher list must track every way an
    ``enabled`` flag can flip (direct setattr, set_all, MSR writes)."""

    def test_snapshot_lists_enabled_in_bank_order(self):
        bank = default_prefetcher_bank()
        assert [p.name for p in bank.enabled_prefetchers()] == bank.names()

    def test_snapshot_is_cached(self):
        bank = default_prefetcher_bank()
        assert bank.enabled_prefetchers() is bank.enabled_prefetchers()

    def test_set_all_invalidates(self):
        bank = default_prefetcher_bank()
        assert bank.enabled_prefetchers()
        bank.set_all(False)
        assert bank.enabled_prefetchers() == []
        bank.set_all(True)
        assert [p.name for p in bank.enabled_prefetchers()] == bank.names()

    def test_direct_setattr_invalidates(self):
        bank = default_prefetcher_bank()
        bank.enabled_prefetchers()
        bank["l1_stride"].enabled = False
        names = [p.name for p in bank.enabled_prefetchers()]
        assert "l1_stride" not in names
        bank["l1_stride"].enabled = True
        assert [p.name for p in bank.enabled_prefetchers()] == bank.names()

    def test_redundant_setattr_keeps_snapshot(self):
        bank = default_prefetcher_bank()
        snapshot = bank.enabled_prefetchers()
        bank["l1_stride"].enabled = True  # no-op flip
        assert bank.enabled_prefetchers() is snapshot

    def test_msr_write_invalidates(self):
        bank = default_prefetcher_bank()
        msrs = MSRFile()
        bank.bind_msr(msrs, INTEL_LIKE_MAP)
        assert bank.enabled_prefetchers()
        INTEL_LIKE_MAP.disable_all(msrs)
        assert bank.enabled_prefetchers() == []
        INTEL_LIKE_MAP.enable_one(msrs, "l2_stream")
        assert [p.name for p in bank.enabled_prefetchers()] == ["l2_stream"]
